package experiments

import (
	"fmt"
	"io"

	"sapspsgd/internal/metrics"
	"sapspsgd/internal/netsim"
	"sapspsgd/internal/trainer"
)

// ConvergenceSuite is the shared engine behind Fig. 3 (accuracy vs epoch),
// Fig. 4 (accuracy vs traffic), Fig. 6 (accuracy vs communication time),
// Table III (final accuracy) and Table IV (traffic/time at target accuracy):
// one training run per algorithm per workload, with the ledger recording
// traffic and simulated time.
type ConvergenceSuite struct {
	Workload Workload
	N        int
	Seed     uint64
	// Algorithms defaults to AlgorithmNames when empty.
	Algorithms []string
	// EvalEvery defaults to Rounds/20.
	EvalEvery int
	// NonIID shards the training data by label (federated-style skew)
	// instead of IID — an extension experiment beyond the paper's IID
	// evaluation.
	NonIID bool
}

// Run executes the suite and returns one Result per algorithm.
func (s ConvergenceSuite) Run() ([]trainer.Result, error) {
	names := s.Algorithms
	if len(names) == 0 {
		names = AlgorithmNames
	}
	bw := EnvN(s.N, s.Seed)
	_, valid := s.Workload.Dataset()
	batchesPerEpoch := s.Workload.TrainSamples / s.N / s.Workload.Batch
	if batchesPerEpoch < 1 {
		batchesPerEpoch = 1
	}
	out := make([]trainer.Result, 0, len(names))
	for _, name := range names {
		alg, err := BuildAlgorithmSharded(name, s.Workload, s.N, bw, s.Seed, s.NonIID)
		if err != nil {
			return nil, err
		}
		res := trainer.Run(alg, bw, trainer.Config{
			Rounds:          s.Workload.Rounds,
			EvalEvery:       s.EvalEvery,
			Valid:           valid,
			BatchesPerEpoch: batchesPerEpoch,
		})
		out = append(out, res)
	}
	return out, nil
}

// WriteFig3 renders the accuracy-vs-epoch series (Fig. 3) as CSV.
func WriteFig3(w io.Writer, results []trainer.Result) {
	fmt.Fprintf(w, "# Fig. 3: top-1 validation accuracy vs epoch\n")
	names := make([]string, 0, len(results))
	series := map[string][]float64{}
	for _, r := range results {
		names = append(names, r.Algorithm)
		var accs []float64
		for _, rec := range r.Records {
			accs = append(accs, rec.ValAcc)
		}
		series[r.Algorithm] = accs
	}
	metrics.Series(w, names, series)
}

// WriteFig4 renders accuracy vs per-worker communication size (Fig. 4): for
// each algorithm, pairs of (traffic MB, accuracy).
func WriteFig4(w io.Writer, results []trainer.Result) {
	fmt.Fprintf(w, "# Fig. 4: accuracy vs per-worker communication size (MB)\n")
	fmt.Fprintln(w, "algorithm,traffic_mb,accuracy")
	for _, r := range results {
		for _, rec := range r.Records {
			fmt.Fprintf(w, "%s,%s,%s\n", r.Algorithm, metrics.F(rec.TrafficMB), metrics.F(rec.ValAcc))
		}
	}
}

// WriteFig6 renders accuracy vs simulated communication time (Fig. 6).
func WriteFig6(w io.Writer, results []trainer.Result) {
	fmt.Fprintf(w, "# Fig. 6: accuracy vs communication time (s)\n")
	fmt.Fprintln(w, "algorithm,comm_time_s,accuracy")
	for _, r := range results {
		for _, rec := range r.Records {
			fmt.Fprintf(w, "%s,%s,%s\n", r.Algorithm, metrics.F(rec.TimeSec), metrics.F(rec.ValAcc))
		}
	}
}

// Table3 builds the final-accuracy comparison (Table III).
func Table3(workload string, results []trainer.Result) *metrics.Table {
	t := metrics.NewTable(fmt.Sprintf("Table III (%s): final top-1 validation accuracy", workload),
		"Algorithm", "Accuracy")
	for _, r := range results {
		t.Add(r.Algorithm, metrics.Pct(r.Final().ValAcc))
	}
	return t
}

// Table4 builds the traffic/time-at-target comparison (Table IV).
func Table4(workload string, target float64, results []trainer.Result) *metrics.Table {
	t := metrics.NewTable(
		fmt.Sprintf("Table IV (%s): traffic and time to reach %s accuracy", workload, metrics.Pct(target)),
		"Algorithm", "Traffic (MB)", "Comm time (s)", "Reached")
	for _, r := range results {
		rec, ok := r.FirstReaching(target)
		if ok {
			t.Add(r.Algorithm, metrics.F(rec.TrafficMB), metrics.F(rec.TimeSec), "yes")
		} else {
			f := r.Final()
			t.Add(r.Algorithm, metrics.F(f.TrafficMB), metrics.F(f.TimeSec), fmt.Sprintf("no (%s)", metrics.Pct(f.ValAcc)))
		}
	}
	return t
}

// Table2 renders the experimental settings (Table II) for the scaled
// workloads, including the realized parameter counts.
func Table2() *metrics.Table {
	t := metrics.NewTable("Table II: experimental settings (CPU-scaled)",
		"Model", "Paper model", "# Params", "Batch", "LR", "Rounds")
	for _, w := range Workloads() {
		m := w.Factory(1)
		t.Add(w.Name, w.PaperName, fmt.Sprintf("%d", m.ParamCount()),
			fmt.Sprintf("%d", w.Batch), metrics.F(w.LR), fmt.Sprintf("%d", w.Rounds))
	}
	return t
}

// TrafficSummary reports the per-worker and server traffic of each run —
// the measured counterpart of the Table I cost model.
func TrafficSummary(results []trainer.Result) *metrics.Table {
	t := metrics.NewTable("Measured traffic after full run",
		"Algorithm", "Mean worker traffic (MB)", "Max worker traffic (MB)", "Server traffic (MB)", "Comm time (s)")
	for _, r := range results {
		t.Add(r.Algorithm,
			metrics.F(r.Ledger.MeanWorkerTrafficMB()),
			metrics.MB(r.Ledger.MaxWorkerTraffic()),
			metrics.MB(r.Ledger.ServerBytes()),
			metrics.F(r.Ledger.TotalTime()))
	}
	return t
}

// Fig1Table renders the embedded 14-city bandwidth matrix (Fig. 1) in MB/s
// after min-symmetrization.
func Fig1Table() *metrics.Table {
	bw := netsim.FourteenCities()
	headers := append([]string{"City"}, netsim.Cities...)
	t := metrics.NewTable("Fig. 1: 14-city link bandwidth (MB/s, min-symmetrized)", headers...)
	for i, c := range netsim.Cities {
		row := []string{c}
		for j := range netsim.Cities {
			if i == j {
				row = append(row, "-")
			} else {
				row = append(row, metrics.F(bw.MBps(i, j)))
			}
		}
		t.Add(row...)
	}
	return t
}
