package experiments

import (
	"strings"
	"testing"

	"sapspsgd/internal/gossip"
	"sapspsgd/internal/netsim"
)

func TestDiagnoseGossipSaneValues(t *testing.T) {
	bw := netsim.FourteenCities()
	d := DiagnoseGossip(bw, gossip.Config{BThres: 2, TThres: 5}, 0.01, 100, 3)
	if d.Rho <= 0 || d.Rho >= 1 {
		t.Fatalf("rho = %v, want (0,1)", d.Rho)
	}
	if d.MixingRate <= 0.98 || d.MixingRate >= 1 {
		// keepP=0.01 → mixing rate just below 1.
		t.Fatalf("mixing rate = %v", d.MixingRate)
	}
	if d.MeanMatched <= 0 {
		t.Fatalf("matched bandwidth %v", d.MeanMatched)
	}
	if d.Samples != 100 {
		t.Fatal("samples")
	}
}

func TestSpectralSweepTradeoff(t *testing.T) {
	// A tighter recency window (small TThres) forces reconnection more
	// often and keeps ρ bounded; both configurations must certify
	// Assumption 3 (ρ < 1).
	bw := netsim.FourteenCities()
	sweep := []int{2, 20}
	small := DiagnoseGossip(bw, gossip.Config{BThres: 5, TThres: sweep[0]}, 0.01, 150, 7)
	large := DiagnoseGossip(bw, gossip.Config{BThres: 5, TThres: sweep[1]}, 0.01, 150, 7)
	if large.ForcedRounds > small.ForcedRounds {
		t.Fatalf("larger window forced reconnection more often (%d vs %d)", large.ForcedRounds, small.ForcedRounds)
	}
	for _, d := range []SpectralDiagnostics{small, large} {
		if d.Rho <= 0 || d.Rho >= 1 {
			t.Fatalf("rho = %v violates Assumption 3", d.Rho)
		}
	}
	tb := SpectralSweep(bw, 5, 0.01, sweep, 60, 7)
	var sb strings.Builder
	tb.WriteMarkdown(&sb)
	if !strings.Contains(sb.String(), "rho") || len(tb.Rows) != 2 {
		t.Fatalf("sweep table:\n%s", sb.String())
	}
}

func TestTightRecencyWindowStillMixes(t *testing.T) {
	// Regression test for a real failure mode found during this
	// reproduction: with TThres=2 a purely deterministic bandwidth-greedy
	// matcher alternates between two fixed matchings whose union is
	// disconnected, giving rho(E[WᵀW]) exactly 1 (no consensus possible).
	// The randomized greedy (bucketed weights + random skips) must keep
	// rho strictly below 1 even at the tightest window.
	bw := netsim.FourteenCities()
	d := DiagnoseGossip(bw, gossip.Config{BThres: 2, TThres: 2}, 0.01, 300, 7)
	if d.Rho >= 1-1e-6 {
		t.Fatalf("rho = %v at TThres=2 — matching randomization regressed", d.Rho)
	}
}

func TestNonIIDSuiteRuns(t *testing.T) {
	suite := ConvergenceSuite{
		Workload:   quickWorkload().WithRounds(40),
		N:          4,
		Seed:       5,
		EvalEvery:  20,
		Algorithms: []string{"SAPS-PSGD", "D-PSGD"},
		NonIID:     true,
	}
	results, err := suite.Run()
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range results {
		if r.Final().ValAcc < 0.3 {
			t.Fatalf("%s non-IID accuracy %v", r.Algorithm, r.Final().ValAcc)
		}
	}
}

func TestExtensionAlgorithmsBuild(t *testing.T) {
	w := quickWorkload()
	bw := EnvN(4, 1)
	for _, name := range []string{"RandomChoose", "PS-PSGD", "QSGD-PSGD", "SAPS-PSGD(churn)"} {
		alg, err := BuildAlgorithm(name, w, 4, bw, 1)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if alg.Name() != name {
			t.Fatalf("name %q != %q", alg.Name(), name)
		}
	}
}
