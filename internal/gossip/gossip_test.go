package gossip

import (
	"math"
	"testing"
	"testing/quick"

	"sapspsgd/internal/graph"
	"sapspsgd/internal/netsim"
	"sapspsgd/internal/rng"
	"sapspsgd/internal/spectral"
	"sapspsgd/internal/tensor"
)

func uniformEnv(n int, seed uint64) *netsim.Bandwidth {
	return netsim.RandomUniform(n, 0, 5, rng.New(seed))
}

func TestMatchingWDoublyStochastic(t *testing.T) {
	f := func(seed uint64) bool {
		r := rng.New(seed)
		n := 2 + r.Intn(20)
		m := RandomMatching(n, r)
		return MatchingW(m).IsDoublyStochastic(1e-12)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestMatchingWUnmatchedSelfLoop(t *testing.T) {
	m := graph.Matching{1, 0, -1}
	w := MatchingW(m)
	if w.At(2, 2) != 1 || w.At(0, 1) != 0.5 || w.At(0, 0) != 0.5 {
		t.Fatalf("W = %v", w.Data)
	}
	if !w.IsDoublyStochastic(1e-12) {
		t.Fatal("not doubly stochastic")
	}
}

func TestRandomMatchingPerfectForEvenN(t *testing.T) {
	r := rng.New(1)
	for _, n := range []int{2, 4, 8, 14, 32} {
		m := RandomMatching(n, r)
		if !m.Valid(n) || m.Size() != n/2 {
			t.Fatalf("n=%d: size %d", n, m.Size())
		}
	}
	// Odd n leaves exactly one unmatched.
	m := RandomMatching(7, r)
	if m.Size() != 3 {
		t.Fatalf("odd n size %d", m.Size())
	}
}

func TestRingW(t *testing.T) {
	for _, n := range []int{1, 2, 3, 8, 32} {
		w := RingW(n)
		if !w.IsDoublyStochastic(1e-12) {
			t.Fatalf("RingW(%d) not doubly stochastic", n)
		}
	}
	w := RingW(4)
	if w.At(0, 1) != 1.0/3 || w.At(0, 3) != 1.0/3 || w.At(0, 0) != 1.0/3 || w.At(0, 2) != 0 {
		t.Fatalf("RingW(4) row 0 wrong: %v", w.Row(0))
	}
}

func TestRingNeighbors(t *testing.T) {
	p, nx := RingNeighbors(0, 5)
	if p != 4 || nx != 1 {
		t.Fatalf("RingNeighbors(0,5) = %d,%d", p, nx)
	}
}

func TestGeneratorProducesPerfectMatchings(t *testing.T) {
	bw := uniformEnv(32, 3)
	g := NewGenerator(bw, Config{BThres: 2.5, TThres: 8}, 42)
	for round := 0; round < 100; round++ {
		r := g.Next(round)
		if !r.Match.Valid(32) {
			t.Fatalf("round %d: invalid matching", round)
		}
		if r.Match.Size() != 16 {
			t.Fatalf("round %d: matching size %d, want 16", round, r.Match.Size())
		}
		if !r.W().IsDoublyStochastic(1e-12) {
			t.Fatalf("round %d: W not doubly stochastic", round)
		}
	}
}

func TestGeneratorDeterministic(t *testing.T) {
	bw := uniformEnv(16, 5)
	a := NewGenerator(bw, Config{BThres: 2, TThres: 5}, 7)
	b := NewGenerator(bw, Config{BThres: 2, TThres: 5}, 7)
	for round := 0; round < 30; round++ {
		ma := a.Next(round).Match
		mb := b.Next(round).Match
		for v := range ma {
			if ma[v] != mb[v] {
				t.Fatalf("round %d: matchings diverge at %d", round, v)
			}
		}
	}
}

func TestGeneratorUpdatesTimestamps(t *testing.T) {
	bw := uniformEnv(8, 9)
	g := NewGenerator(bw, Config{BThres: 0, TThres: 4}, 1)
	r := g.Next(0)
	for _, pair := range r.Match.Pairs() {
		if g.LastUsed(pair[0], pair[1]) != 0 {
			t.Fatalf("timestamp not recorded for %v", pair)
		}
	}
}

func TestGeneratorPCEdgesConnected(t *testing.T) {
	// Assumption 3's prerequisite: over a window of rounds, the set of used
	// edges must form a connected graph. Use a high BThres so B* alone is NOT
	// connected — the recency mechanism must inject bridging edges.
	bw := netsim.FourteenCities()
	g := NewGenerator(bw, Config{BThres: 5, TThres: 6}, 11)
	n := bw.N
	if bw.FilterGraph(5).IsConnected() {
		t.Fatal("test premise broken: B* should be disconnected at 5 MB/s")
	}
	const rounds = 120
	used := graph.New(n)
	for round := 0; round < rounds; round++ {
		r := g.Next(round)
		for _, p := range r.Match.Pairs() {
			used.AddEdge(p[0], p[1])
		}
	}
	if !used.IsConnected() {
		t.Fatal("union of used edges is not connected — Assumption 3 violated")
	}
	// Moreover, every sliding window of 3*TThres rounds must itself restore
	// connectivity at least once (Forced rounds appear regularly).
	forced := 0
	for round := rounds; round < rounds+40; round++ {
		if g.Next(round).Forced {
			forced++
		}
	}
	if forced == 0 {
		t.Fatal("recency constraint never forced reconnection in 40 rounds")
	}
}

func TestGeneratorRhoBelowOne(t *testing.T) {
	// Sample gossip matrices from the generator and verify the second
	// largest eigenvalue of the empirical E[WᵀW] is < 1.
	bw := netsim.FourteenCities()
	g := NewGenerator(bw, Config{BThres: 2, TThres: 5}, 13)
	var ws []*tensor.Matrix
	for round := 0; round < 200; round++ {
		ws = append(ws, g.Next(round).W())
	}
	rho := spectral.RhoOfExpectedWtW(ws, 400)
	if rho >= 1-1e-6 {
		t.Fatalf("rho = %v, want < 1", rho)
	}
	if rho < 0 || math.IsNaN(rho) {
		t.Fatalf("rho = %v invalid", rho)
	}
}

func TestGeneratorPrefersHighBandwidth(t *testing.T) {
	// The mean matched bandwidth under SAPS should comfortably exceed that of
	// uniformly random matchings — the Fig. 5 claim.
	bw := uniformEnv(32, 21)
	g := NewGenerator(bw, Config{BThres: 3, TThres: 10}, 17)
	r := rng.New(99)
	var saps, random float64
	const rounds = 200
	for round := 0; round < rounds; round++ {
		saps += MeanMatchedBandwidth(g.Next(round).Match, bw)
		random += MeanMatchedBandwidth(RandomMatching(32, r), bw)
	}
	saps /= rounds
	random /= rounds
	if saps <= random {
		t.Fatalf("SAPS mean matched bandwidth %v not above random %v", saps, random)
	}
}

func TestGeneratorSparseEnvironmentStillMatches(t *testing.T) {
	// An environment where some links are missing entirely (zero bandwidth):
	// build a path topology; maximum matching size n/2 is impossible every
	// round, but the matching must stay valid and nonempty.
	raw := make([][]float64, 6)
	for i := range raw {
		raw[i] = make([]float64, 6)
	}
	for i := 0; i < 5; i++ {
		raw[i][i+1] = 2
		raw[i+1][i] = 2
	}
	bw := netsim.NewBandwidth(raw)
	g := NewGenerator(bw, Config{BThres: 1, TThres: 4}, 3)
	for round := 0; round < 50; round++ {
		r := g.Next(round)
		if !r.Match.Valid(6) {
			t.Fatalf("round %d invalid", round)
		}
		if r.Match.Size() == 0 {
			t.Fatalf("round %d: no pairs matched on a connected path", round)
		}
		for _, p := range r.Match.Pairs() {
			if bw.MBps(p[0], p[1]) <= 0 {
				t.Fatalf("matched a nonexistent link %v", p)
			}
		}
	}
}

func TestGeneratorBadTThresPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	NewGenerator(uniformEnv(4, 1), Config{TThres: 0}, 1)
}

func TestMeanMatchedBandwidth(t *testing.T) {
	bw := netsim.NewBandwidth([][]float64{
		{0, 4, 0, 0},
		{4, 0, 0, 0},
		{0, 0, 0, 2},
		{0, 0, 2, 0},
	})
	m := graph.Matching{1, 0, 3, 2}
	if got := MeanMatchedBandwidth(m, bw); got != 3 {
		t.Fatalf("MeanMatchedBandwidth = %v, want 3", got)
	}
	if got := MeanMatchedBandwidth(graph.Matching{-1, -1, -1, -1}, bw); got != 0 {
		t.Fatalf("empty = %v", got)
	}
}

func TestRingMeanBandwidth(t *testing.T) {
	bw := netsim.NewBandwidth([][]float64{
		{0, 1, 3},
		{1, 0, 2},
		{3, 2, 0},
	})
	want := (1.0 + 2 + 3) / 3
	if got := RingMeanBandwidth(bw); math.Abs(got-want) > 1e-12 {
		t.Fatalf("RingMeanBandwidth = %v, want %v", got, want)
	}
}

func BenchmarkGeneratorNext32(b *testing.B) {
	bw := uniformEnv(32, 1)
	g := NewGenerator(bw, Config{BThres: 2.5, TThres: 8}, 1)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		g.Next(i)
	}
}
