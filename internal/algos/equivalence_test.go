package algos

import (
	"testing"

	"sapspsgd/internal/engine"
	"sapspsgd/internal/netsim"
)

// allBaselineBuilders constructs every algorithm of the comparison (the
// seven of the paper plus the QSGD and RandomChoose ablations) over a shared
// tiny task.
func allBaselineBuilders(n int) []struct {
	name  string
	build func(fc FleetConfig, bw *netsim.Bandwidth) Algorithm
} {
	return []struct {
		name  string
		build func(fc FleetConfig, bw *netsim.Bandwidth) Algorithm
	}{
		{"PSGD", func(fc FleetConfig, bw *netsim.Bandwidth) Algorithm { return NewPSGD(fc) }},
		{"TopK-PSGD", func(fc FleetConfig, bw *netsim.Bandwidth) Algorithm { return NewTopKPSGD(fc, 20) }},
		{"QSGD-PSGD", func(fc FleetConfig, bw *netsim.Bandwidth) Algorithm { return NewQSGDPSGD(fc, 4) }},
		{"FedAvg", func(fc FleetConfig, bw *netsim.Bandwidth) Algorithm { return NewFedAvg(fc, bw, 0.5, 2) }},
		{"S-FedAvg", func(fc FleetConfig, bw *netsim.Bandwidth) Algorithm { return NewSFedAvg(fc, bw, 0.5, 2, 10) }},
		{"D-PSGD", func(fc FleetConfig, bw *netsim.Bandwidth) Algorithm { return NewDPSGD(fc) }},
		{"DCD-PSGD", func(fc FleetConfig, bw *netsim.Bandwidth) Algorithm { return NewDCDPSGD(fc, 4) }},
		{"PS-PSGD", func(fc FleetConfig, bw *netsim.Bandwidth) Algorithm { return NewPSPSGD(fc, bw) }},
		{"SAPS-PSGD", func(fc FleetConfig, bw *netsim.Bandwidth) Algorithm { return NewSAPS(fc, bw, sapsConfig(8)) }},
		{"RandomChoose", func(fc FleetConfig, bw *netsim.Bandwidth) Algorithm { return NewRandomChoose(fc, bw, sapsConfig(8)) }},
	}
}

// TestBackendEquivalenceAllBaselines is the backend contract extended to
// every baseline: the identical algorithm stepped against the pure-counting
// ledger (memtransport semantics) and against the bandwidth-accounted netsim
// ledger (simtransport semantics) must produce bit-identical model
// trajectories and byte-identical per-worker traffic — the ledger is an
// observer, never an input.
func TestBackendEquivalenceAllBaselines(t *testing.T) {
	const n, rounds = 8, 6
	for _, b := range allBaselineBuilders(n) {
		b := b
		t.Run(b.name, func(t *testing.T) {
			t.Parallel()
			fcA, bw, _ := testSetup(t, n)
			fcB, _, _ := testSetup(t, n)
			algA := b.build(fcA, bw) // counting ledger (memtransport)
			algB := b.build(fcB, bw) // netsim ledger (simtransport)
			ledA := &engine.CountingLedger{}
			ledB := netsim.NewLedger(bw)
			for r := 0; r < rounds; r++ {
				algA.Step(r, ledA)
				algB.Step(r, ledB)
				pa, pb := algA.Models(), algB.Models()
				if len(pa) != len(pb) {
					t.Fatalf("round %d: %d vs %d models", r, len(pa), len(pb))
				}
				for m := range pa {
					va, vb := pa[m].FlatParams(nil), pb[m].FlatParams(nil)
					for j := range va {
						if va[j] != vb[j] {
							t.Fatalf("round %d model %d param %d: counting %v != netsim %v", r, m, j, va[j], vb[j])
						}
					}
				}
			}
			for i := 0; i < n; i++ {
				sa, ra := ledA.WorkerBytes(i)
				sb, rb := ledB.WorkerBytes(i)
				if sa != sb || ra != rb {
					t.Fatalf("worker %d bytes: counting %d/%d != netsim %d/%d", i, sa, ra, sb, rb)
				}
			}
			// Hub algorithms route the server's side through netsim's
			// server account; the counting ledger tracks it as rank n
			// (serverless algorithms have zeros on both sides).
			ss, sr := ledA.WorkerBytes(n)
			if got := ledB.ServerBytes(); got != ss+sr {
				t.Fatalf("server bytes: counting %d != netsim %d", ss+sr, got)
			}
			if !ledB.ConservationOK() {
				t.Fatalf("netsim ledger conservation violated")
			}
			if ledA.TotalBytes() == 0 {
				t.Fatalf("no traffic accounted")
			}
			if ledB.TotalTime() <= 0 {
				t.Fatalf("no simulated communication time accrued")
			}
		})
	}
}

// TestPSGDChargesBothDirections is the regression test for the seed's
// asymmetric ring accounting (it charged recvBytes=0 on every ring link):
// with measured codec bytes, every PSGD worker's received volume must equal
// its sent volume, and both must be positive.
func TestPSGDChargesBothDirections(t *testing.T) {
	const n, rounds = 8, 3
	fc, bw, _ := testSetup(t, n)
	alg := NewPSGD(fc)
	led := netsim.NewLedger(bw)
	counting := &engine.CountingLedger{}
	for r := 0; r < rounds; r++ {
		alg.Step(r, led)
	}
	alg2 := NewPSGD(fc)
	for r := 0; r < rounds; r++ {
		alg2.Step(r, counting)
	}
	for i := 0; i < n; i++ {
		sent, recv := led.WorkerBytes(i)
		if sent == 0 || recv == 0 {
			t.Fatalf("worker %d: sent %d recv %d — a direction went uncharged", i, sent, recv)
		}
		if sent != recv {
			t.Fatalf("worker %d: sent %d != recv %d — all-reduce volume must be symmetric", i, sent, recv)
		}
	}
	if !led.ConservationOK() {
		t.Fatal("ledger conservation violated")
	}
}
