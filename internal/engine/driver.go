package engine

import "sapspsgd/internal/compress"

// Driver is Algorithm 1's round loop, backend-agnostic: plan the round
// (Algorithm 3 via the Planner), run it on every worker through the Control
// barrier, then account the round's traffic in the Ledger — one bidirectional
// charge per matched pair, sized by the shared-mask payload the workers
// actually transmitted.
type Driver struct {
	Planner Planner
	Control Control
}

// Round executes round t against the ledger and returns its stats.
func (d *Driver) Round(t int, led Ledger) (RoundStats, error) {
	plan := d.Planner.Plan(t)
	loss, payloadLen, err := d.Control.RunRound(plan)
	if err != nil {
		return RoundStats{}, err
	}
	bytes := compress.MaskedBytes(payloadLen)
	for i, p := range plan.Peer {
		if p > i {
			led.Exchange(i, p, bytes, bytes)
		}
	}
	led.EndRound()
	return RoundStats{Plan: plan, PayloadLen: payloadLen, Loss: loss}, nil
}
