// Documentation lint: the engine, transport, scenario, and campaign
// packages are the system's public-facing layers (DESIGN.md §2–§3, §6), so
// every exported identifier there must carry a doc comment and every
// package a package comment. This is the in-repo mirror of CI's staticcheck ST1000/ST1020/
// ST1022 step — it runs in the tier-1 suite, so the gate holds offline too.
package sapspsgd_test

import (
	"fmt"
	"go/ast"
	"go/parser"
	"go/token"
	"io/fs"
	"strings"
	"testing"
)

// docCheckedPackages are the directories held to the exported-docs standard.
var docCheckedPackages = []string{
	"internal/campaign",
	"internal/engine",
	"internal/obs",
	"internal/scenario",
	"internal/transport",
}

func TestExportedIdentifiersAreDocumented(t *testing.T) {
	for _, dir := range docCheckedPackages {
		dir := dir
		t.Run(strings.ReplaceAll(dir, "/", "_"), func(t *testing.T) {
			fset := token.NewFileSet()
			pkgs, err := parser.ParseDir(fset, dir, func(fi fs.FileInfo) bool {
				return !strings.HasSuffix(fi.Name(), "_test.go")
			}, parser.ParseComments)
			if err != nil {
				t.Fatal(err)
			}
			for name, pkg := range pkgs {
				if strings.HasSuffix(name, "_test") {
					continue
				}
				var problems []string
				hasPkgDoc := false
				for _, f := range pkg.Files {
					if f.Doc != nil {
						hasPkgDoc = true
					}
					problems = append(problems, fileDocProblems(fset, f)...)
				}
				if !hasPkgDoc {
					problems = append(problems, fmt.Sprintf("package %s has no package comment (ST1000)", name))
				}
				if len(problems) > 0 {
					t.Errorf("%s: %d undocumented exported identifier(s):\n  %s",
						dir, len(problems), strings.Join(problems, "\n  "))
				}
			}
		})
	}
}

// fileDocProblems reports exported top-level declarations without doc
// comments in one file.
func fileDocProblems(fset *token.FileSet, f *ast.File) []string {
	var out []string
	report := func(pos token.Pos, kind, name string) {
		p := fset.Position(pos)
		out = append(out, fmt.Sprintf("%s:%d: exported %s %s is undocumented (ST1020)", p.Filename, p.Line, kind, name))
	}
	for _, decl := range f.Decls {
		switch d := decl.(type) {
		case *ast.FuncDecl:
			if !d.Name.IsExported() || receiverUnexported(d) {
				continue
			}
			if d.Doc == nil {
				kind := "function"
				if d.Recv != nil {
					kind = "method"
				}
				report(d.Pos(), kind, d.Name.Name)
			}
		case *ast.GenDecl:
			for _, spec := range d.Specs {
				switch sp := spec.(type) {
				case *ast.TypeSpec:
					if sp.Name.IsExported() && d.Doc == nil && sp.Doc == nil {
						report(sp.Pos(), "type", sp.Name.Name)
					}
				case *ast.ValueSpec:
					for _, n := range sp.Names {
						// A shared doc comment on the grouped decl covers
						// every name in the group (the const-block idiom).
						if n.IsExported() && d.Doc == nil && sp.Doc == nil {
							report(n.Pos(), "value", n.Name)
						}
					}
				}
			}
		}
	}
	return out
}

// receiverUnexported reports whether a method hangs off an unexported type
// (its docs are not part of the package's godoc surface).
func receiverUnexported(d *ast.FuncDecl) bool {
	if d.Recv == nil || len(d.Recv.List) == 0 {
		return false
	}
	t := d.Recv.List[0].Type
	for {
		switch v := t.(type) {
		case *ast.StarExpr:
			t = v.X
		case *ast.IndexExpr:
			t = v.X
		case *ast.Ident:
			return !v.IsExported()
		default:
			return false
		}
	}
}
