package campaign

import (
	"bytes"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"strconv"

	"sapspsgd/internal/metrics"
)

// AggregateSchemaVersion is the aggregate.json schema.
const AggregateSchemaVersion = 1

// AggregateRow is one cell's summary inside aggregate.json (the per-round
// series stay in the cell files; the row carries the figure-level totals).
type AggregateRow struct {
	// Cell is the run-matrix cell ID.
	Cell string `json:"cell"`
	// Algo through Compression label the cell (see CellResult).
	Algo        string  `json:"algo"`
	Nodes       int     `json:"nodes"`
	Rounds      int     `json:"rounds"`
	Seed        uint64  `json:"seed"`
	Shards      int     `json:"shards"`
	Bandwidth   string  `json:"bandwidth,omitempty"`
	FleetTrace  string  `json:"fleet_trace,omitempty"`
	Partition   string  `json:"partition,omitempty"`
	Compression float64 `json:"compression,omitempty"`
	// TotalBytes, FinalLoss and SimSeconds are the cell's deterministic
	// totals.
	TotalBytes int64   `json:"total_bytes"`
	FinalLoss  float64 `json:"final_loss"`
	SimSeconds float64 `json:"sim_seconds"`
}

// AggregateFile is aggregate.json: the campaign's deterministic cell
// summary in run-matrix order.
type AggregateFile struct {
	// SchemaVersion must equal AggregateSchemaVersion.
	SchemaVersion int `json:"schema_version"`
	// Campaign is the campaign name.
	Campaign string `json:"campaign"`
	// Cells lists every cell in run-matrix order.
	Cells []AggregateRow `json:"cells"`
}

// readCellResult loads and sanity-checks one persisted cell record.
func readCellResult(outDir string, cell Cell) (*CellResult, error) {
	data, err := os.ReadFile(cellFile(outDir, cell.ID))
	if err != nil {
		return nil, err
	}
	var res CellResult
	if err := json.Unmarshal(data, &res); err != nil {
		return nil, fmt.Errorf("campaign: cell %s: %w", cell.ID, err)
	}
	if res.SchemaVersion != CellResultSchemaVersion {
		return nil, fmt.Errorf("campaign: cell %s: result schema_version %d, want %d", cell.ID, res.SchemaVersion, CellResultSchemaVersion)
	}
	if res.SpecSHA != cell.SHA {
		return nil, fmt.Errorf("campaign: cell %s: result from spec %s, current spec is %s (stale output directory?)",
			cell.ID, res.SpecSHA, cell.SHA)
	}
	return &res, nil
}

// Aggregate reads every cell's persisted result and writes the campaign's
// figure artifacts into outDir:
//
//   - aggregate.json — per-cell totals in run-matrix order;
//   - summary.md / summary.csv — the same rows as a metrics.Table;
//   - traffic_by_algo.md / traffic_by_algo.csv — per-algorithm cell counts
//     and mean traffic/loss (the paper's per-algo traffic comparison);
//   - loss_vs_round.csv — one loss column per cell, one row per round;
//   - loss_vs_bytes.csv — per cell and round, cumulative traffic (MB)
//     against loss (the convergence-vs-traffic figure's underlying data).
//
// All inputs and outputs are deterministic: repeat runs of the same
// campaign — interrupted or not — produce byte-identical artifacts.
func Aggregate(c *Spec, cells []Cell, outDir string) error {
	agg := &AggregateFile{SchemaVersion: AggregateSchemaVersion, Campaign: c.Name}
	results := make([]*CellResult, 0, len(cells))
	for _, cell := range cells {
		res, err := readCellResult(outDir, cell)
		if err != nil {
			return err
		}
		results = append(results, res)
		agg.Cells = append(agg.Cells, AggregateRow{
			Cell:        res.Cell,
			Algo:        res.Algo,
			Nodes:       res.Nodes,
			Rounds:      res.Rounds,
			Seed:        res.Seed,
			Shards:      res.Shards,
			Bandwidth:   res.Bandwidth,
			FleetTrace:  res.FleetTrace,
			Partition:   res.Partition,
			Compression: res.Compression,
			TotalBytes:  res.TotalBytes,
			FinalLoss:   res.FinalLoss,
			SimSeconds:  res.SimSeconds,
		})
	}
	data, err := json.MarshalIndent(agg, "", "  ")
	if err != nil {
		return err
	}
	if err := writeFileAtomic(filepath.Join(outDir, "aggregate.json"), append(data, '\n')); err != nil {
		return err
	}

	summary := metrics.NewTable("Campaign "+c.Name,
		"cell", "algo", "nodes", "rounds", "bandwidth", "trace", "partition",
		"compression", "seed", "shards", "total", "sim_s", "final_loss")
	for _, r := range results {
		comp := ""
		if r.Compression > 0 {
			comp = compact(r.Compression)
		}
		summary.Add(r.Cell, r.Algo, strconv.Itoa(r.Nodes), strconv.Itoa(r.Rounds),
			r.Bandwidth, r.FleetTrace, r.Partition, comp,
			strconv.FormatUint(r.Seed, 10), strconv.Itoa(r.Shards),
			metrics.MB(r.TotalBytes), metrics.F(r.SimSeconds), metrics.F(r.FinalLoss))
	}
	if err := writeTable(outDir, "summary", summary); err != nil {
		return err
	}

	byAlgo := metrics.NewTable("Traffic by algorithm",
		"algo", "cells", "mean_total_mb", "mean_sim_s", "mean_final_loss")
	type acc struct {
		cells     int
		bytes     int64
		sim, loss float64
	}
	accs := map[string]*acc{}
	var order []string
	for _, r := range results {
		a, ok := accs[r.Algo]
		if !ok {
			a = &acc{}
			accs[r.Algo] = a
			order = append(order, r.Algo)
		}
		a.cells++
		a.bytes += r.TotalBytes
		a.sim += r.SimSeconds
		a.loss += r.FinalLoss
	}
	for _, algo := range order {
		a := accs[algo]
		n := float64(a.cells)
		byAlgo.Add(algo, strconv.Itoa(a.cells),
			metrics.F(float64(a.bytes)/n/1e6), metrics.F(a.sim/n), metrics.F(a.loss/n))
	}
	if err := writeTable(outDir, "traffic_by_algo", byAlgo); err != nil {
		return err
	}

	names := make([]string, len(results))
	series := map[string][]float64{}
	for i, r := range results {
		names[i] = r.Cell
		series[r.Cell] = r.Losses
	}
	var buf bytes.Buffer
	metrics.Series(&buf, names, series)
	if err := writeFileAtomic(filepath.Join(outDir, "loss_vs_round.csv"), buf.Bytes()); err != nil {
		return err
	}

	lvb := metrics.NewTable("", "cell", "round", "cum_mb", "loss")
	for _, r := range results {
		for round := range r.Losses {
			mb := 0.0
			if round < len(r.CumBytes) {
				mb = float64(r.CumBytes[round]) / 1e6
			}
			lvb.Add(r.Cell, strconv.Itoa(round), metrics.F(mb), metrics.F(r.Losses[round]))
		}
	}
	buf.Reset()
	lvb.WriteCSV(&buf)
	return writeFileAtomic(filepath.Join(outDir, "loss_vs_bytes.csv"), buf.Bytes())
}

// writeTable writes a metrics.Table as both <name>.md and <name>.csv.
func writeTable(outDir, name string, t *metrics.Table) error {
	var buf bytes.Buffer
	t.WriteMarkdown(&buf)
	if err := writeFileAtomic(filepath.Join(outDir, name+".md"), buf.Bytes()); err != nil {
		return err
	}
	buf.Reset()
	t.WriteCSV(&buf)
	return writeFileAtomic(filepath.Join(outDir, name+".csv"), buf.Bytes())
}
