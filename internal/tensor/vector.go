// Package tensor provides the dense float64 vector and matrix primitives the
// neural-network substrate and the gossip/compression algorithms are built on.
//
// Models are exchanged between workers as flat []float64 parameter vectors
// (Eq. (2) of the paper), so most of this package operates on plain slices;
// Matrix is a thin row-major wrapper used by the layers and by the gossip
// matrix analysis.
package tensor

import (
	"fmt"
	"math"
)

// Zeros returns a freshly allocated zero vector of length n.
func Zeros(n int) []float64 { return make([]float64, n) }

// Clone returns a copy of v.
func Clone(v []float64) []float64 {
	out := make([]float64, len(v))
	copy(out, v)
	return out
}

// The element-wise kernels below process four elements per iteration. The
// unrolling is bit-transparent — each element's arithmetic is independent, so
// the results are identical to the scalar loop (unlike reductions, where
// reassociation would change the floating-point sum; Dot and Sum therefore
// keep a single sequential accumulator).

// Fill sets every element of v to x.
func Fill(v []float64, x float64) {
	n := len(v) &^ 3
	for i := 0; i < n; i += 4 {
		v[i], v[i+1], v[i+2], v[i+3] = x, x, x, x
	}
	for i := n; i < len(v); i++ {
		v[i] = x
	}
}

// Axpy computes y += a*x element-wise. It panics if lengths differ.
func Axpy(a float64, x, y []float64) {
	assertSameLen(len(x), len(y))
	y = y[:len(x)]
	n := len(x) &^ 3
	for i := 0; i < n; i += 4 {
		y[i] += a * x[i]
		y[i+1] += a * x[i+1]
		y[i+2] += a * x[i+2]
		y[i+3] += a * x[i+3]
	}
	for i := n; i < len(x); i++ {
		y[i] += a * x[i]
	}
}

// Scale multiplies every element of v by a in place.
func Scale(a float64, v []float64) {
	n := len(v) &^ 3
	for i := 0; i < n; i += 4 {
		v[i] *= a
		v[i+1] *= a
		v[i+2] *= a
		v[i+3] *= a
	}
	for i := n; i < len(v); i++ {
		v[i] *= a
	}
}

// Add computes dst = a + b element-wise. dst may alias a or b.
func Add(dst, a, b []float64) {
	assertSameLen(len(a), len(b))
	assertSameLen(len(dst), len(a))
	b, dst = b[:len(a)], dst[:len(a)]
	n := len(a) &^ 3
	for i := 0; i < n; i += 4 {
		dst[i] = a[i] + b[i]
		dst[i+1] = a[i+1] + b[i+1]
		dst[i+2] = a[i+2] + b[i+2]
		dst[i+3] = a[i+3] + b[i+3]
	}
	for i := n; i < len(a); i++ {
		dst[i] = a[i] + b[i]
	}
}

// Sub computes dst = a - b element-wise. dst may alias a or b.
func Sub(dst, a, b []float64) {
	assertSameLen(len(a), len(b))
	assertSameLen(len(dst), len(a))
	b, dst = b[:len(a)], dst[:len(a)]
	n := len(a) &^ 3
	for i := 0; i < n; i += 4 {
		dst[i] = a[i] - b[i]
		dst[i+1] = a[i+1] - b[i+1]
		dst[i+2] = a[i+2] - b[i+2]
		dst[i+3] = a[i+3] - b[i+3]
	}
	for i := n; i < len(a); i++ {
		dst[i] = a[i] - b[i]
	}
}

// Dot returns the inner product of a and b. The accumulation is a single
// sequential chain — unrolling with partial sums would reassociate the
// floating-point additions and break bit-identical reproducibility.
func Dot(a, b []float64) float64 {
	assertSameLen(len(a), len(b))
	s := 0.0
	for i, ai := range a {
		s += ai * b[i]
	}
	return s
}

// Norm2 returns the Euclidean norm of v.
func Norm2(v []float64) float64 { return math.Sqrt(Dot(v, v)) }

// Sum returns the sum of the elements of v.
func Sum(v []float64) float64 {
	s := 0.0
	for _, x := range v {
		s += x
	}
	return s
}

// Mean returns the arithmetic mean of v, or 0 for an empty vector.
func Mean(v []float64) float64 {
	if len(v) == 0 {
		return 0
	}
	return Sum(v) / float64(len(v))
}

// Hadamard computes dst = a ∘ b (element-wise product). dst may alias a or b.
func Hadamard(dst, a, b []float64) {
	assertSameLen(len(a), len(b))
	assertSameLen(len(dst), len(a))
	b, dst = b[:len(a)], dst[:len(a)]
	n := len(a) &^ 3
	for i := 0; i < n; i += 4 {
		dst[i] = a[i] * b[i]
		dst[i+1] = a[i+1] * b[i+1]
		dst[i+2] = a[i+2] * b[i+2]
		dst[i+3] = a[i+3] * b[i+3]
	}
	for i := n; i < len(a); i++ {
		dst[i] = a[i] * b[i]
	}
}

// ApplyMask zeroes the elements of v where mask is false, implementing
// x̃ = x ∘ m from Eq. (2).
func ApplyMask(v []float64, mask []bool) {
	assertSameLen(len(v), len(mask))
	for i, keep := range mask {
		if !keep {
			v[i] = 0
		}
	}
}

// MaskedAverage implements the SAPS-PSGD update of Algorithm 2 line 10
// combined with the pairwise doubly stochastic gossip step: for masked
// coordinates, x ← (x + peer)/2; unmasked coordinates keep x.
func MaskedAverage(x, peer []float64, mask []bool) {
	assertSameLen(len(x), len(peer))
	assertSameLen(len(x), len(mask))
	for i, on := range mask {
		if on {
			x[i] = 0.5 * (x[i] + peer[i])
		}
	}
}

// MaxAbsDiff returns max_i |a[i]-b[i]|, a convenient consensus metric.
func MaxAbsDiff(a, b []float64) float64 {
	assertSameLen(len(a), len(b))
	m := 0.0
	for i := range a {
		if d := math.Abs(a[i] - b[i]); d > m {
			m = d
		}
	}
	return m
}

// ArgMax returns the index of the largest element of v (first on ties). It
// panics on an empty vector.
func ArgMax(v []float64) int {
	if len(v) == 0 {
		panic("tensor: ArgMax of empty vector")
	}
	best, bi := v[0], 0
	for i := 1; i < len(v); i++ {
		if v[i] > best {
			best, bi = v[i], i
		}
	}
	return bi
}

func assertSameLen(a, b int) {
	if a != b {
		panic(fmt.Sprintf("tensor: length mismatch %d != %d", a, b))
	}
}
