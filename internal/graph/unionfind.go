package graph

// UnionFind is a disjoint-set forest with union by rank and path compression.
// It backs the fast connectivity checks used when regenerating gossip
// topologies every round.
type UnionFind struct {
	parent []int
	rank   []byte
	sets   int
}

// NewUnionFind returns n singleton sets.
func NewUnionFind(n int) *UnionFind {
	uf := &UnionFind{parent: make([]int, n), rank: make([]byte, n), sets: n}
	for i := range uf.parent {
		uf.parent[i] = i
	}
	return uf
}

// Find returns the canonical representative of x's set.
func (u *UnionFind) Find(x int) int {
	for u.parent[x] != x {
		u.parent[x] = u.parent[u.parent[x]]
		x = u.parent[x]
	}
	return x
}

// Union merges the sets containing a and b; it reports whether a merge
// happened (false if they were already together).
func (u *UnionFind) Union(a, b int) bool {
	ra, rb := u.Find(a), u.Find(b)
	if ra == rb {
		return false
	}
	if u.rank[ra] < u.rank[rb] {
		ra, rb = rb, ra
	}
	u.parent[rb] = ra
	if u.rank[ra] == u.rank[rb] {
		u.rank[ra]++
	}
	u.sets--
	return true
}

// Connected reports whether a and b are in the same set.
func (u *UnionFind) Connected(a, b int) bool { return u.Find(a) == u.Find(b) }

// Sets returns the current number of disjoint sets.
func (u *UnionFind) Sets() int { return u.sets }
