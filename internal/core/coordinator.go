package core

import (
	"sapspsgd/internal/gossip"
	"sapspsgd/internal/graph"
	"sapspsgd/internal/netsim"
	"sapspsgd/internal/rng"
)

// Coordinator is the lightweight central manager of Algorithm 1. It never
// touches model payloads — per round it produces only the gossip matching
// W_t and the mask seed s, both small control messages (the paper compares
// it to a BitTorrent tracker).
type Coordinator struct {
	cfg Config
	gen *gossip.Generator
	rs  *rng.Source
}

// RoundPlan is the control message broadcast to workers each round
// (W_t, t, s of Algorithm 1 line 6). Peer[rank] is the rank to exchange with
// this round, or -1 to skip.
type RoundPlan struct {
	Round int
	Seed  uint64
	Peer  []int
	// Active, when non-nil, marks which workers participate this round
	// (dynamic membership): inactive workers neither train nor communicate.
	// nil means every worker is active.
	Active []bool
	// Forced reports whether Algorithm 3 had to inject connectivity-
	// restoring edges this round (diagnostics).
	Forced bool
}

// NewCoordinator builds the coordinator over a bandwidth environment. The
// environment is the coordinator's bandwidth matrix B (Algorithm 1 input);
// in deployment it is assembled from worker-reported link measurements.
func NewCoordinator(bw *netsim.Bandwidth, cfg Config) *Coordinator {
	if err := cfg.Validate(); err != nil {
		panic(err)
	}
	return &Coordinator{
		cfg: cfg,
		gen: gossip.NewGenerator(bw, cfg.Gossip, cfg.Seed),
		rs:  rng.New(cfg.Seed).Derive(0xc00d),
	}
}

// Plan runs Algorithm 3 for round t and draws the round's mask seed.
func (c *Coordinator) Plan(t int) RoundPlan { return c.PlanActive(t, nil) }

// PlanActive plans a round over a dynamic worker set: workers with
// active[i] == false are excluded from matching (they receive Peer = -1).
// This is the join/leave robustness the paper motivates — the coordinator
// simply regenerates the gossip matrix over whoever is present.
func (c *Coordinator) PlanActive(t int, active []bool) RoundPlan {
	r := c.gen.NextActive(t, active)
	var snapshot []bool
	if active != nil {
		// Copy: the caller's membership slice mutates between rounds while
		// the plan may still be in flight through the engine.
		snapshot = append([]bool(nil), active...)
	}
	return RoundPlan{
		Round:  t,
		Seed:   c.rs.Uint64(),
		Peer:   r.Match,
		Active: snapshot,
		Forced: r.Forced,
	}
}

// Matching converts a RoundPlan's peer table back to a graph.Matching (for
// bandwidth statistics).
func (p RoundPlan) Matching() graph.Matching { return graph.Matching(p.Peer) }
