package algos

import (
	"sapspsgd/internal/compress"
	"sapspsgd/internal/core"
	"sapspsgd/internal/gossip"
	"sapspsgd/internal/netsim"
	"sapspsgd/internal/nn"
	"sapspsgd/internal/rng"
	"sapspsgd/internal/trace"
)

// SAPS is the paper's algorithm: local SGD + shared-seed sparsified
// single-peer gossip with adaptive (bandwidth-aware, recency-constrained)
// peer selection.
type SAPS struct {
	workers []*core.Worker
	coord   *core.Coordinator
	models  []*nn.Model
	fleet   *Fleet
	// LastMatchedBandwidth is the mean bandwidth (MB/s) over the pairs
	// matched in the most recent round — the Fig. 5 series.
	LastMatchedBandwidth float64
	// Trace, when set, records one event per round (matching, bandwidths,
	// forced-reconnection flag, payload size, loss).
	Trace *trace.Recorder
	bw    *netsim.Bandwidth
}

// NewSAPS builds the algorithm over the bandwidth environment bw.
func NewSAPS(fc FleetConfig, bw *netsim.Bandwidth, cfg core.Config) *SAPS {
	f := NewFleet(fc)
	s := &SAPS{fleet: f, bw: bw, models: f.Models}
	// core.NewWorker builds its own loader; the fleet's models are shared so
	// evaluation sees the live parameters.
	s.workers = make([]*core.Worker, f.N)
	for i := 0; i < f.N; i++ {
		s.workers[i] = core.NewWorker(i, f.Models[i], fc.Shards[i], cfg)
	}
	s.coord = core.NewCoordinator(bw, cfg)
	return s
}

// Name implements Algorithm.
func (s *SAPS) Name() string { return "SAPS-PSGD" }

// Models implements Algorithm.
func (s *SAPS) Models() []*nn.Model { return s.models }

// Step implements Algorithm: Algorithm 1 (coordinator) + Algorithm 2
// (workers) for one round.
func (s *SAPS) Step(round int, led *netsim.Ledger) float64 {
	plan := s.coord.Plan(round)

	// Local SGD in parallel (Algorithm 2 line 5).
	loss := s.fleet.Parallel(func(i int) float64 {
		return s.workers[i].LocalSGD()
	})

	// Shared mask + payload extraction (lines 6–7), parallel per worker.
	payloads := make([][]float64, s.fleet.N)
	s.fleet.Parallel(func(i int) float64 {
		s.workers[i].RoundMask(plan.Seed, plan.Round)
		payloads[i] = s.workers[i].MaskedPayload()
		return 0
	})

	// Pairwise exchange + masked average (lines 8–10), with traffic
	// accounting per matched pair.
	for i, peer := range plan.Peer {
		if peer > i {
			bytes := compress.MaskedBytes(len(payloads[i]))
			led.Exchange(i, peer, bytes, compress.MaskedBytes(len(payloads[peer])))
		}
	}
	s.fleet.Parallel(func(i int) float64 {
		if peer := plan.Peer[i]; peer != -1 {
			s.workers[i].MergePeer(payloads[peer])
		}
		return 0
	})

	s.LastMatchedBandwidth = gossip.MeanMatchedBandwidth(plan.Matching(), s.bw)
	if s.Trace != nil {
		payload := int64(0)
		if len(payloads) > 0 {
			payload = compress.MaskedBytes(len(payloads[0]))
		}
		s.Trace.Record(round, plan.Matching(), s.bw, plan.Forced, payload, s.fleet.N, loss)
	}
	led.EndRound()
	return loss
}

var _ Algorithm = (*SAPS)(nil)

// RandomChoose is SAPS with the adaptive peer selection replaced by a
// uniformly random maximum matching each round — the paper's RandomChoose
// comparison in Fig. 5. Sparsification and masked averaging are unchanged.
type RandomChoose struct {
	workers []*core.Worker
	fleet   *Fleet
	bw      *netsim.Bandwidth
	rnd     *rng.Source
	seedSrc *rng.Source
	// LastMatchedBandwidth mirrors SAPS.LastMatchedBandwidth.
	LastMatchedBandwidth float64
}

// NewRandomChoose builds the random-matching variant.
func NewRandomChoose(fc FleetConfig, bw *netsim.Bandwidth, cfg core.Config) *RandomChoose {
	f := NewFleet(fc)
	rc := &RandomChoose{
		fleet:   f,
		bw:      bw,
		rnd:     rng.New(cfg.Seed).Derive(0x7a4d01),
		seedSrc: rng.New(cfg.Seed).Derive(0x7a4d02),
	}
	rc.workers = make([]*core.Worker, f.N)
	for i := 0; i < f.N; i++ {
		rc.workers[i] = core.NewWorker(i, f.Models[i], fc.Shards[i], cfg)
	}
	return rc
}

// Name implements Algorithm.
func (rc *RandomChoose) Name() string { return "RandomChoose" }

// Models implements Algorithm.
func (rc *RandomChoose) Models() []*nn.Model { return rc.fleet.Models }

// Step implements Algorithm.
func (rc *RandomChoose) Step(round int, led *netsim.Ledger) float64 {
	match := gossip.RandomMatching(rc.fleet.N, rc.rnd)
	seed := rc.seedSrc.Uint64()

	loss := rc.fleet.Parallel(func(i int) float64 {
		return rc.workers[i].LocalSGD()
	})
	payloads := make([][]float64, rc.fleet.N)
	rc.fleet.Parallel(func(i int) float64 {
		rc.workers[i].RoundMask(seed, round)
		payloads[i] = rc.workers[i].MaskedPayload()
		return 0
	})
	for i, peer := range match {
		if peer > i {
			led.Exchange(i, peer, compress.MaskedBytes(len(payloads[i])), compress.MaskedBytes(len(payloads[peer])))
		}
	}
	rc.fleet.Parallel(func(i int) float64 {
		if peer := match[i]; peer != -1 {
			rc.workers[i].MergePeer(payloads[peer])
		}
		return 0
	})
	rc.LastMatchedBandwidth = gossip.MeanMatchedBandwidth(match, rc.bw)
	led.EndRound()
	return loss
}

var _ Algorithm = (*RandomChoose)(nil)
