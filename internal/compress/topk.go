package compress

import (
	"fmt"

	"sapspsgd/internal/rng"
)

// TopK selects the k entries of x with largest absolute value and returns
// them as a SparseVec. Selection uses an in-place quickselect over a copy of
// the magnitudes (expected O(n)); index order of the result is ascending.
func TopK(x []float64, k int) SparseVec {
	var out SparseVec
	TopKInto(&out, nil, x, k)
	return out
}

// TopKInto is TopK writing into out and using mags as quickselect scratch
// space (grown as needed, so a reused scratch slice allocates only once).
// out's Idx/Val storage is reused across calls; after the first call at a
// given (n, k) the steady state performs zero heap allocations.
func TopKInto(out *SparseVec, mags []float64, x []float64, k int) []float64 {
	n := len(x)
	if k < 0 {
		panic(fmt.Sprintf("compress: negative k %d", k))
	}
	if k > n {
		k = n
	}
	out.N = n
	out.Idx = out.Idx[:0]
	out.Val = out.Val[:0]
	if k == 0 {
		return mags
	}
	if k == n {
		for i := range x {
			out.Idx = append(out.Idx, int32(i))
			out.Val = append(out.Val, x[i])
		}
		return mags
	}

	// Quickselect the k-th largest magnitude.
	if cap(mags) < n {
		mags = make([]float64, n)
	}
	mags = mags[:n]
	for i, v := range x {
		if v < 0 {
			mags[i] = -v
		} else {
			mags[i] = v
		}
	}
	thresh := quickselectDesc(mags, k)

	// Single pass in ascending index order: keep every entry whose magnitude
	// clears the threshold, counting the threshold ties. Quickselect
	// guarantees at most k-1 strictly-greater entries and at least k entries
	// overall, so the surplus (if any) consists entirely of ties; a short
	// compaction then drops the highest-indexed ties down to exactly k.
	// Because the pass visits indices in order, the result is already
	// index-sorted — no sort needed, unlike the historical two-pass + sort,
	// and the selected set and ordering are identical (all strictly-greater
	// entries plus the lowest-indexed ties).
	eq := 0
	for i, v := range x {
		m := v
		if m < 0 {
			m = -m
		}
		if m < thresh {
			continue
		}
		if m == thresh {
			eq++
		}
		out.Idx = append(out.Idx, int32(i))
		out.Val = append(out.Val, v)
	}
	if drop := len(out.Idx) - k; drop > 0 {
		keepEq := eq - drop
		w := 0
		for r := 0; r < len(out.Idx); r++ {
			m := out.Val[r]
			if m < 0 {
				m = -m
			}
			if m == thresh {
				if keepEq == 0 {
					continue
				}
				keepEq--
			}
			out.Idx[w], out.Val[w] = out.Idx[r], out.Val[r]
			w++
		}
		out.Idx, out.Val = out.Idx[:w], out.Val[:w]
	}
	return mags
}

// quickselectDesc returns the k-th largest value of a (1-based k), mutating a.
func quickselectDesc(a []float64, k int) float64 {
	lo, hi := 0, len(a)-1
	target := k - 1 // index in descending order
	// Deterministic pseudo-random pivots via a tiny LCG keep adversarial
	// inputs from degrading to O(n^2).
	state := uint64(0x9e3779b97f4a7c15)
	for {
		if lo == hi {
			return a[lo]
		}
		state = state*6364136223846793005 + 1442695040888963407
		p := lo + int(state%uint64(hi-lo+1))
		a[p], a[hi] = a[hi], a[p]
		pivot := a[hi]
		store := lo
		for i := lo; i < hi; i++ {
			if a[i] > pivot {
				a[i], a[store] = a[store], a[i]
				store++
			}
		}
		a[store], a[hi] = a[hi], a[store]
		switch {
		case target == store:
			return a[store]
		case target < store:
			hi = store - 1
		default:
			lo = store + 1
		}
	}
}

// ErrorFeedback wraps a sparsifying compressor with the residual-accumulation
// scheme ("error compensation") that Top-k sparsification needs for
// convergence: coordinates dropped this round are added back to the input of
// the next round. All buffers (residual, compensated input, quickselect
// scratch, and the returned sparse vector) are owned by the accumulator and
// reused, so a steady-state CompressTopK performs zero heap allocations.
type ErrorFeedback struct {
	residual []float64
	scratch  []float64
	mags     []float64
	out      SparseVec
}

// NewErrorFeedback returns an error-feedback accumulator for n-dimensional
// inputs.
func NewErrorFeedback(n int) *ErrorFeedback {
	return &ErrorFeedback{residual: make([]float64, n), scratch: make([]float64, n)}
}

// CompressTopK adds the residual to x, selects the top k entries of the sum
// for transmission, and stores what was left behind as the new residual. The
// input slice is not modified. The returned SparseVec aliases buffers owned
// by e and is only valid until the next CompressTopK call.
func (e *ErrorFeedback) CompressTopK(x []float64, k int) SparseVec {
	if len(x) != len(e.residual) {
		panic("compress: ErrorFeedback dimension mismatch")
	}
	for i, v := range x {
		e.scratch[i] = v + e.residual[i]
	}
	e.mags = TopKInto(&e.out, e.mags, e.scratch, k)
	copy(e.residual, e.scratch)
	for _, idx := range e.out.Idx {
		e.residual[idx] = 0
	}
	return e.out
}

// Residual exposes the current residual (for tests and diagnostics).
func (e *ErrorFeedback) Residual() []float64 { return e.residual }

// SetResidual overwrites the residual with a checkpointed copy — restoring
// it resumes the compensation stream exactly (error-feedback residuals are
// part of a rank's round-boundary snapshot). It panics on a length mismatch.
func (e *ErrorFeedback) SetResidual(r []float64) {
	if len(r) != len(e.residual) {
		panic(fmt.Sprintf("compress: SetResidual of %d values on %d-dimensional accumulator", len(r), len(e.residual)))
	}
	copy(e.residual, r)
}

// RandomK selects k coordinates uniformly at random (without replacement)
// using the given RNG and returns them with their values. Unlike the shared-
// mask scheme, the support is explicit, so the wire cost includes indices.
func RandomK(x []float64, k int, r *rng.Source) SparseVec {
	var out SparseVec
	RandomKInto(&out, make(map[int32]bool, k), x, k, r)
	return out
}

// RandomKInto is RandomK writing into out and reusing chosen as the
// sampling-set scratch (cleared on entry, so a persistent map makes the
// steady state allocation-free). It draws the RNG in exactly RandomK's
// order, so the two entry points produce identical supports from the same
// stream position.
func RandomKInto(out *SparseVec, chosen map[int32]bool, x []float64, k int, r *rng.Source) {
	n := len(x)
	if k > n {
		k = n
	}
	out.N = n
	out.Idx = out.Idx[:0]
	out.Val = out.Val[:0]
	if k == 0 {
		return
	}
	// Floyd's sampling: k uniform draws without replacement in O(k). The
	// map is only ever membership-tested in ascending index order, so its
	// (randomized) iteration order cannot leak into the result.
	clear(chosen)
	for j := n - k; j < n; j++ {
		t := int32(r.Intn(j + 1))
		if chosen[t] {
			t = int32(j)
		}
		chosen[t] = true
	}
	for i := int32(0); int(i) < n; i++ {
		if chosen[i] {
			out.Idx = append(out.Idx, i)
			out.Val = append(out.Val, x[i])
		}
	}
}
