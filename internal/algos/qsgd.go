package algos

import (
	"sapspsgd/internal/compress"
	"sapspsgd/internal/netsim"
	"sapspsgd/internal/nn"
	"sapspsgd/internal/tensor"
)

// QSGDPSGD is an extension baseline (the paper's related work positions
// sparsification against quantization): PSGD with QSGD-quantized gradients
// all-gathered among workers. Quantization caps compression at 32/bits per
// value, so even aggressive 4-level QSGD cannot approach the mask
// sparsifier's 100× — the ablation benches quantify the gap.
type QSGDPSGD struct {
	fleet  *Fleet
	lr     float64
	quants []*compress.QSGD
	avg    []float64
	grads  [][]float64
}

// NewQSGDPSGD builds the quantized all-gather baseline with the given level
// count (levels=1 is ternary TernGrad-style, 127 is 8-bit).
func NewQSGDPSGD(fc FleetConfig, levels int) *QSGDPSGD {
	f := NewFleet(fc)
	q := &QSGDPSGD{
		fleet: f,
		lr:    fc.LR,
		avg:   make([]float64, f.Dim),
		grads: make([][]float64, f.N),
	}
	for i := 0; i < f.N; i++ {
		q.quants = append(q.quants, compress.NewQSGD(levels, fc.Seed+uint64(i)*31))
		q.grads[i] = make([]float64, f.Dim)
	}
	return q
}

// Name implements Algorithm.
func (q *QSGDPSGD) Name() string { return "QSGD-PSGD" }

// Models implements Algorithm.
func (q *QSGDPSGD) Models() []*nn.Model { return q.fleet.Models }

// Step implements Algorithm.
func (q *QSGDPSGD) Step(round int, led *netsim.Ledger) float64 {
	encoded := make([]compress.Quantized, q.fleet.N)
	loss := q.fleet.Parallel(func(i int) float64 {
		l := q.fleet.GradStep(i)
		q.grads[i] = q.fleet.Models[i].FlatGrads(q.grads[i])
		encoded[i] = q.quants[i].Quantize(q.grads[i])
		return l
	})
	tensor.Fill(q.avg, 0)
	for i := 0; i < q.fleet.N; i++ {
		tensor.Axpy(1/float64(q.fleet.N), encoded[i].Decode(), q.avg)
	}
	q.fleet.Parallel(func(i int) float64 {
		q.fleet.Models[i].AddFlatToParams(-q.lr, q.avg)
		return 0
	})
	for i := 0; i < q.fleet.N; i++ {
		for j := i + 1; j < q.fleet.N; j++ {
			led.Exchange(i, j, encoded[i].WireBytes(), encoded[j].WireBytes())
		}
	}
	led.EndRound()
	return loss
}

var _ Algorithm = (*QSGDPSGD)(nil)
