package algos

import (
	"fmt"

	"sapspsgd/internal/compress"
	"sapspsgd/internal/netsim"
	"sapspsgd/internal/nn"
	"sapspsgd/internal/rng"
	"sapspsgd/internal/tensor"
)

// FedAvg is the centralized federated averaging baseline (McMahan et al.):
// each round a fraction of workers pulls the server model, runs several
// local SGD steps, and pushes its full model back; the server averages.
type FedAvg struct {
	fleet      *Fleet
	server     *nn.Model
	fraction   float64
	localSteps int
	rnd        *rng.Source
	serverLink []float64 // server↔worker bandwidth (MB/s)
	scratch    []float64
	acc        []float64
}

// NewFedAvg builds the baseline. fraction is the per-round participation
// ratio (the paper uses 0.5); localSteps is the number of local minibatch
// steps per round. The server is placed optimistically: its link to worker i
// is the best bandwidth worker i has to anyone (the paper's "choosing the
// server that has the maximum bandwidth").
func NewFedAvg(fc FleetConfig, bw *netsim.Bandwidth, fraction float64, localSteps int) *FedAvg {
	if fraction <= 0 || fraction > 1 {
		panic(fmt.Sprintf("algos: FedAvg fraction %v", fraction))
	}
	if localSteps < 1 {
		panic(fmt.Sprintf("algos: FedAvg localSteps %d", localSteps))
	}
	f := NewFleet(fc)
	fa := &FedAvg{
		fleet:      f,
		server:     fc.Factory(),
		fraction:   fraction,
		localSteps: localSteps,
		rnd:        rng.New(fc.Seed).Derive(0xfeda),
		scratch:    make([]float64, f.Dim),
		acc:        make([]float64, f.Dim),
	}
	fa.serverLink = serverLinks(bw)
	return fa
}

// serverLinks gives each worker its best available link speed, modeling a
// server placed at the highest-bandwidth location.
func serverLinks(bw *netsim.Bandwidth) []float64 {
	out := make([]float64, bw.N)
	for i := 0; i < bw.N; i++ {
		best := 0.0
		for j := 0; j < bw.N; j++ {
			if v := bw.MBps(i, j); v > best {
				best = v
			}
		}
		out[i] = best
	}
	return out
}

// Name implements Algorithm.
func (fa *FedAvg) Name() string { return "FedAvg" }

// Models implements Algorithm. The global model lives on the server, but
// evaluation needs trained normalization running statistics, which the
// server model (never forward-passed in training mode) lacks; each Step
// therefore mirrors the server parameters onto worker 0's model, which is
// what Models returns.
func (fa *FedAvg) Models() []*nn.Model { return []*nn.Model{fa.fleet.Models[0]} }

// selectWorkers draws max(1, fraction*n) distinct workers.
func (fa *FedAvg) selectWorkers() []int {
	k := int(fa.fraction * float64(fa.fleet.N))
	if k < 1 {
		k = 1
	}
	perm := fa.rnd.Perm(fa.fleet.N)
	return perm[:k]
}

// Step implements Algorithm.
func (fa *FedAvg) Step(round int, led *netsim.Ledger) float64 {
	chosen := fa.selectWorkers()
	serverParams := fa.server.FlatParams(fa.scratch)

	inChosen := make(map[int]bool, len(chosen))
	for _, i := range chosen {
		inChosen[i] = true
	}
	losses := 0.0
	// Download, local training, upload — parallel across chosen workers.
	lossPer := make([]float64, fa.fleet.N)
	fa.fleet.Parallel(func(i int) float64 {
		if !inChosen[i] {
			return 0
		}
		fa.fleet.Models[i].SetFlatParams(serverParams)
		total := 0.0
		for s := 0; s < fa.localSteps; s++ {
			total += fa.fleet.SGDStep(i)
		}
		lossPer[i] = total / float64(fa.localSteps)
		return 0
	})
	// Server average of the uploaded models.
	tensor.Fill(fa.acc, 0)
	dense := compress.DenseBytes(fa.fleet.Dim)
	for _, i := range chosen {
		tensor.Axpy(1/float64(len(chosen)), fa.fleet.Models[i].FlatParams(nil), fa.acc)
		led.ServerTransfer(i, dense, dense, fa.serverLink[i])
		losses += lossPer[i]
	}
	fa.server.SetFlatParams(fa.acc)
	fa.fleet.Models[0].SetFlatParams(fa.acc) // eval mirror (see Models)
	led.EndRound()
	return losses / float64(len(chosen))
}

var _ Algorithm = (*FedAvg)(nil)

// SFedAvg is FedAvg with sparse random structured uploads (Konečný et al.):
// the downstream model stays dense, but each chosen worker uploads only a
// random N/c subset of its model delta with explicit indices.
type SFedAvg struct {
	fa  *FedAvg
	c   float64
	rnd *rng.Source
}

// NewSFedAvg builds the sparse FedAvg baseline with compression ratio c (the
// paper uses c = 100, fraction 0.5).
func NewSFedAvg(fc FleetConfig, bw *netsim.Bandwidth, fraction float64, localSteps int, c float64) *SFedAvg {
	if c < 1 {
		panic(fmt.Sprintf("algos: SFedAvg c=%v", c))
	}
	return &SFedAvg{
		fa:  NewFedAvg(fc, bw, fraction, localSteps),
		c:   c,
		rnd: rng.New(fc.Seed).Derive(0x5feda),
	}
}

// Name implements Algorithm.
func (s *SFedAvg) Name() string { return "S-FedAvg" }

// Models implements Algorithm.
func (s *SFedAvg) Models() []*nn.Model { return s.fa.Models() }

// Step implements Algorithm.
func (s *SFedAvg) Step(round int, led *netsim.Ledger) float64 {
	fa := s.fa
	chosen := fa.selectWorkers()
	serverParams := fa.server.FlatParams(fa.scratch)

	inChosen := make(map[int]bool, len(chosen))
	for _, i := range chosen {
		inChosen[i] = true
	}
	lossPer := make([]float64, fa.fleet.N)
	fa.fleet.Parallel(func(i int) float64 {
		if !inChosen[i] {
			return 0
		}
		fa.fleet.Models[i].SetFlatParams(serverParams)
		total := 0.0
		for st := 0; st < fa.localSteps; st++ {
			total += fa.fleet.SGDStep(i)
		}
		lossPer[i] = total / float64(fa.localSteps)
		return 0
	})

	k := int(float64(fa.fleet.Dim) / s.c)
	if k < 1 {
		k = 1
	}
	// Server aggregates the sparse deltas per coordinate: each received
	// coordinate is averaged over the workers that actually reported it
	// (count normalization keeps the variance bounded at high c).
	tensor.Fill(fa.acc, 0)
	counts := make([]int32, fa.fleet.Dim)
	delta := make([]float64, fa.fleet.Dim)
	losses := 0.0
	dense := compress.DenseBytes(fa.fleet.Dim)
	for _, i := range chosen {
		cur := fa.fleet.Models[i].FlatParams(nil)
		tensor.Sub(delta, cur, serverParams)
		sv := compress.RandomK(delta, k, s.rnd)
		for j, idx := range sv.Idx {
			fa.acc[idx] += sv.Val[j]
			counts[idx]++
		}
		led.ServerTransfer(i, sv.WireBytes(), dense, fa.serverLink[i])
		losses += lossPer[i]
	}
	for j, c := range counts {
		if c > 0 {
			serverParams[j] += fa.acc[j] / float64(c)
		}
	}
	fa.server.SetFlatParams(serverParams)
	fa.fleet.Models[0].SetFlatParams(serverParams) // eval mirror (see Models)
	led.EndRound()
	return losses / float64(len(chosen))
}

var _ Algorithm = (*SFedAvg)(nil)
