package transport

import (
	"sync"
	"testing"

	"sapspsgd/internal/gossip"
	"sapspsgd/internal/netsim"
	"sapspsgd/internal/rng"
)

func TestAssembleBandwidth(t *testing.T) {
	reports := []MeasureReport{
		{Rank: 0, MBps: []float64{0, 10, 4}},
		{Rank: 1, MBps: []float64{8, 0, 0}}, // probe to 2 failed
		{Rank: 2, MBps: []float64{5, 6, 0}},
	}
	bw, err := AssembleBandwidth(3, reports)
	if err != nil {
		t.Fatal(err)
	}
	// (0,1): min(10, 8) = 8.
	if got := bw.MBps(0, 1); got != 8 {
		t.Fatalf("MBps(0,1) = %v, want 8", got)
	}
	// (1,2): 1→2 failed (0), mirrored from 2→1 = 6.
	if got := bw.MBps(1, 2); got != 6 {
		t.Fatalf("MBps(1,2) = %v, want 6", got)
	}
	// (0,2): min(4, 5) = 4.
	if got := bw.MBps(0, 2); got != 4 {
		t.Fatalf("MBps(0,2) = %v, want 4", got)
	}
}

func TestAssembleBandwidthErrors(t *testing.T) {
	if _, err := AssembleBandwidth(2, []MeasureReport{{Rank: 0, MBps: []float64{0, 1}}}); err == nil {
		t.Fatal("missing report accepted")
	}
	if _, err := AssembleBandwidth(2, []MeasureReport{
		{Rank: 0, MBps: []float64{0, 1}},
		{Rank: 0, MBps: []float64{0, 1}},
	}); err == nil {
		t.Fatal("duplicate report accepted")
	}
	if _, err := AssembleBandwidth(2, []MeasureReport{
		{Rank: 0, MBps: []float64{0}},
		{Rank: 1, MBps: []float64{1, 0}},
	}); err == nil {
		t.Fatal("malformed report accepted")
	}
}

func TestEndToEndWithMeasurementPhase(t *testing.T) {
	// Full training with the bandwidth measurement phase enabled: probes
	// run over loopback, so every measured link should be fast and
	// training must proceed normally.
	const n = 3
	spec := TaskSpec{
		Arch: "mlp", C: 1, H: 8, W: 8, Classes: 4,
		Hidden: []int{8}, Samples: 120, DataSeed: 5,
		LR: 0.1, Batch: 8, Compression: 2, LocalSteps: 1,
		Rounds: 6, Seed: 3,
	}
	srv := &CoordinatorServer{
		N: n, Task: spec,
		BW:         netsim.RandomUniform(n, 1, 5, rng.New(2)),
		Measure:    true,
		ProbeBytes: 16 << 10,
		Gossip:     gossip.Config{TThres: 4},
	}
	addr, err := srv.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	errs := make([]error, n)
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			wc := &WorkerClient{}
			_, errs[i] = wc.Run(addr, "127.0.0.1:0")
		}(i)
	}
	final, err := srv.Run()
	wg.Wait()
	if err != nil {
		t.Fatalf("coordinator: %v", err)
	}
	for i, e := range errs {
		if e != nil {
			t.Fatalf("worker %d: %v", i, e)
		}
	}
	if len(final) == 0 {
		t.Fatal("no model collected")
	}
}

func TestThroughputMBps(t *testing.T) {
	if got := throughputMBps(2e6, 1e9); got != 2 { // 2 MB in 1 s
		t.Fatalf("throughput = %v, want 2", got)
	}
	if got := throughputMBps(100, 0); got <= 0 {
		t.Fatalf("zero-duration throughput = %v, want positive", got)
	}
}
