package algos

import "sapspsgd/internal/netsim"

// PSPSGD is the classical parameter-server PSGD of Table I's first row:
// every round each worker pulls the fresh dense model, computes one
// minibatch gradient on it, and pushes the dense gradient; the server
// averages and updates the global model. Distinct from FedAvg (which
// averages models after multiple local steps) and from PSGD all-reduce
// (which has no server). Composed as Hub pattern (the server is node rank n)
// + Dense codecs both directions; netsim charges land on the server links
// via ServerTransfer, exactly as the paper models the centralized baselines.
type PSPSGD struct {
	*engineAlgo
}

// NewPSPSGD builds the parameter-server baseline. The server is placed
// optimistically: its link to worker i is the best bandwidth worker i has to
// anyone (the paper's "choosing the server that has the maximum bandwidth").
func NewPSPSGD(fc FleetConfig, bw *netsim.Bandwidth) *PSPSGD {
	r := Recipe{Algo: "ps-psgd", Workers: fc.N, LR: fc.LR, Batch: fc.Batch, Seed: fc.Seed}
	a, _ := newEngineAlgo("PS-PSGD", fc, r, r.Planner(nil, defaultRecipeGossip()), serverLinks(bw))
	return &PSPSGD{engineAlgo: a}
}

var _ Algorithm = (*PSPSGD)(nil)
