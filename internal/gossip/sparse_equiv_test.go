package gossip

import (
	"slices"
	"testing"

	"sapspsgd/internal/netsim"
	"sapspsgd/internal/rng"
)

// equivConfigs provokes every planner regime: TThres=1 keeps the RC graph
// permanently empty (every round forced), the high-BThres/short-window entry
// mixes connected and forced rounds, and the last entry stays connected.
var equivConfigs = []Config{
	{BThres: 0, TThres: 1},
	{BThres: 4.5, TThres: 3},
	{BThres: 1, TThres: 10},
}

// churnMask draws one membership vector per round (≥ 2 active), shared by
// both generators so their active views agree.
func churnMask(n int, r *rng.Source, prev []bool) []bool {
	if prev == nil {
		prev = make([]bool, n)
	}
	for {
		count := 0
		for i := range prev {
			prev[i] = r.Float64() < 0.8
			if prev[i] {
				count++
			}
		}
		if count >= 2 {
			return prev
		}
	}
}

// runPair drives the sparse Generator and the dense ReferenceGenerator in
// lockstep and fails on the first diverging round. Returns the number of
// forced rounds observed.
func runPair(t *testing.T, bw *netsim.Bandwidth, cfg Config, seed uint64, rounds int, churn bool) int {
	t.Helper()
	sparse := NewGenerator(bw, cfg, seed)
	dense := NewReferenceGenerator(bw, cfg, seed)
	var active []bool
	ar := rng.New(seed).Derive(0xac7e)
	forced := 0
	for round := 0; round < rounds; round++ {
		if churn {
			active = churnMask(bw.N, ar, active)
		}
		rs := sparse.NextActive(round, active)
		rd := dense.NextActive(round, active)
		if rs.Forced != rd.Forced {
			t.Fatalf("round %d (cfg %+v churn %v): forced sparse=%v dense=%v", round, cfg, churn, rs.Forced, rd.Forced)
		}
		if !slices.Equal(rs.Match, rd.Match) {
			t.Fatalf("round %d (cfg %+v churn %v): matchings diverge\nsparse %v\ndense  %v", round, cfg, churn, rs.Match, rd.Match)
		}
		if rs.Forced {
			forced++
		}
	}
	return forced
}

// TestSparseGeneratorBitIdenticalToReference is the tentpole equivalence
// property: the sparse planner's matching sequence is bit-identical to the
// retained dense formulation for N ∈ {8, 64, 512} across ≥ 5 seeds, with and
// without churn, and the sweep demonstrably covers forced-connectivity
// rounds at every N.
func TestSparseGeneratorBitIdenticalToReference(t *testing.T) {
	sizes := []int{8, 64, 512}
	for _, n := range sizes {
		rounds := 40
		if n == 512 {
			rounds = 20
			if testing.Short() {
				rounds = 8
			}
		}
		forcedTotal := 0
		for seed := uint64(1); seed <= 5; seed++ {
			// Small fleets use the paper-style complete environment. At 512
			// a complete graph would make every TThres=1 round match over
			// ~130k candidate edges (the test ran minutes); a degree-bounded
			// topology — densified so the dense reference sees the identical
			// links — keeps all planner regimes while staying fast.
			var bw *netsim.Bandwidth
			if n <= 64 {
				bw = netsim.RandomUniform(n, 0.5, 5, rng.New(seed))
			} else {
				sp := netsim.SparseRandomUniform(n, 8, 0.5, 5, rng.New(seed))
				raw := make([][]float64, n)
				for i := range raw {
					raw[i] = make([]float64, n)
					for j := 0; j < n; j++ {
						raw[i][j] = sp.MBps(i, j)
					}
				}
				bw = netsim.NewBandwidth(raw)
			}
			for _, cfg := range equivConfigs {
				forcedTotal += runPair(t, bw, cfg, seed, rounds, false)
				forcedTotal += runPair(t, bw, cfg, seed, rounds, true)
			}
		}
		if forcedTotal == 0 {
			t.Fatalf("n=%d: no forced rounds covered — tighten the configs", n)
		}
	}
}

// TestSparseEnvironmentMatchesDenseEnvironment pins the other axis: the same
// generator over a sparse CSR environment and over its dense-matrix twin
// (identical link weights) must produce identical matchings — the sparse
// edge enumeration order is exactly the dense pair-scan order.
func TestSparseEnvironmentMatchesDenseEnvironment(t *testing.T) {
	for _, n := range []int{8, 64, 512} {
		rounds := 30
		if n == 512 {
			rounds = 10
		}
		for seed := uint64(1); seed <= 5; seed++ {
			sp := netsim.SparseRandomUniform(n, min(8, n-1), 0.5, 5, rng.New(seed))
			raw := make([][]float64, n)
			for i := range raw {
				raw[i] = make([]float64, n)
				for j := 0; j < n; j++ {
					raw[i][j] = sp.MBps(i, j)
				}
			}
			dn := netsim.NewBandwidth(raw)
			cfg := Config{BThres: 1, TThres: 4}
			gs := NewGenerator(sp, cfg, seed)
			gd := NewGenerator(dn, cfg, seed)
			for round := 0; round < rounds; round++ {
				rs, rd := gs.Next(round), gd.Next(round)
				if rs.Forced != rd.Forced || !slices.Equal(rs.Match, rd.Match) {
					t.Fatalf("n=%d seed=%d round %d: sparse env diverges from dense twin", n, seed, round)
				}
			}
		}
	}
}

// TestGeneratorRejectsDecreasingRounds documents the sparse planner's one
// behavioral restriction: eviction makes round generation order-dependent,
// so going backwards panics instead of silently mis-planning.
func TestGeneratorRejectsDecreasingRounds(t *testing.T) {
	bw := netsim.RandomUniform(8, 1, 5, rng.New(1))
	g := NewGenerator(bw, Config{TThres: 3}, 7)
	g.Next(5)
	defer func() {
		if recover() == nil {
			t.Fatal("decreasing round did not panic")
		}
	}()
	g.Next(4)
}

// TestGeneratorLastUsedWindow pins the sparse LastUsed semantics: stamps are
// visible inside the TThres window and read -1 once evicted.
func TestGeneratorLastUsedWindow(t *testing.T) {
	bw := netsim.RandomUniform(8, 1, 5, rng.New(3))
	g := NewGenerator(bw, Config{TThres: 3}, 11)
	r := g.Next(0)
	pairs := r.Match.Pairs()
	if len(pairs) == 0 {
		t.Fatal("no pairs matched")
	}
	u, v := pairs[0][0], pairs[0][1]
	if got := g.LastUsed(u, v); got != 0 {
		t.Fatalf("LastUsed = %d, want 0", got)
	}
	// Rounds 1..3 may re-stamp the pair; probe a fabricated stale edge
	// instead: an edge never matched always reads -1.
	var un, vn = -1, -1
	for i := 0; i < 8 && un == -1; i++ {
		for j := i + 1; j < 8; j++ {
			if r.Match[i] != j {
				un, vn = i, j
				break
			}
		}
	}
	if got := g.LastUsed(un, vn); got != -1 {
		t.Fatalf("never-used LastUsed = %d, want -1", got)
	}
	// March far past the window without re-matching (empty active set is
	// invalid; use all-inactive-but-two instead) — after expiry the stamp
	// reads -1 again.
	quiet := make([]bool, 8)
	quiet[un], quiet[vn] = true, true
	for round := 1; round <= 6; round++ {
		g.NextActive(round, quiet)
	}
	if got := g.LastUsed(u, v); got != -1 && got != 0 {
		t.Fatalf("expired LastUsed = %d, want -1", got)
	}
	if u != un && u != vn && v != un && v != vn {
		if got := g.LastUsed(u, v); got != -1 {
			t.Fatalf("expired LastUsed = %d, want -1 (round 0 stamp left the TThres=3 window)", got)
		}
	}
}
