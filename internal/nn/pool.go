package nn

import (
	"fmt"

	"sapspsgd/internal/tensor"
)

// MaxPool2D is a max pooling layer with square window and equal stride.
type MaxPool2D struct {
	In       Shape
	K        int
	OutShape Shape
	argmax   []int32 // per batch element×output position: winning input index
	rows     int
}

// NewMaxPool2D returns a K×K max pool with stride K. The input spatial size
// must be divisible by K.
func NewMaxPool2D(in Shape, k int) *MaxPool2D {
	if in.H%k != 0 || in.W%k != 0 {
		panic(fmt.Sprintf("nn: MaxPool2D %v not divisible by %d", in, k))
	}
	return &MaxPool2D{In: in, K: k, OutShape: Shape{C: in.C, H: in.H / k, W: in.W / k}}
}

// Forward computes window maxima, caching argmax indices when training.
func (p *MaxPool2D) Forward(x *tensor.Matrix, train bool) *tensor.Matrix {
	if x.Cols != p.In.Dim() {
		panic(fmt.Sprintf("nn: MaxPool2D input %d, want %d", x.Cols, p.In.Dim()))
	}
	oH, oW := p.OutShape.H, p.OutShape.W
	out := tensor.NewMatrix(x.Rows, p.OutShape.Dim())
	if train {
		p.rows = x.Rows
		need := x.Rows * p.OutShape.Dim()
		if len(p.argmax) != need {
			p.argmax = make([]int32, need)
		}
	}
	for i := 0; i < x.Rows; i++ {
		in := x.Row(i)
		o := out.Row(i)
		for c := 0; c < p.In.C; c++ {
			chIn := in[c*p.In.H*p.In.W:]
			for oy := 0; oy < oH; oy++ {
				for ox := 0; ox < oW; ox++ {
					best := chIn[oy*p.K*p.In.W+ox*p.K]
					bestIdx := oy*p.K*p.In.W + ox*p.K
					for ky := 0; ky < p.K; ky++ {
						for kx := 0; kx < p.K; kx++ {
							idx := (oy*p.K+ky)*p.In.W + ox*p.K + kx
							if chIn[idx] > best {
								best = chIn[idx]
								bestIdx = idx
							}
						}
					}
					oPos := (c*oH+oy)*oW + ox
					o[oPos] = best
					if train {
						p.argmax[i*p.OutShape.Dim()+oPos] = int32(c*p.In.H*p.In.W + bestIdx)
					}
				}
			}
		}
	}
	return out
}

// Backward routes each output gradient to its winning input position.
func (p *MaxPool2D) Backward(dout *tensor.Matrix) *tensor.Matrix {
	dx := tensor.NewMatrix(p.rows, p.In.Dim())
	dim := p.OutShape.Dim()
	for i := 0; i < dout.Rows; i++ {
		dr := dout.Row(i)
		dxr := dx.Row(i)
		for j, g := range dr {
			dxr[p.argmax[i*dim+j]] += g
		}
	}
	return dx
}

// Params returns nothing: pooling is stateless.
func (p *MaxPool2D) Params() []Param { return nil }

var _ Layer = (*MaxPool2D)(nil)

// GlobalAvgPool averages each channel over its spatial extent — ResNet's
// final pooling.
type GlobalAvgPool struct {
	In   Shape
	rows int
}

// NewGlobalAvgPool returns a global average pool over the spatial dims.
func NewGlobalAvgPool(in Shape) *GlobalAvgPool { return &GlobalAvgPool{In: in} }

// Forward reduces each channel to its mean.
func (p *GlobalAvgPool) Forward(x *tensor.Matrix, train bool) *tensor.Matrix {
	hw := p.In.H * p.In.W
	out := tensor.NewMatrix(x.Rows, p.In.C)
	p.rows = x.Rows
	for i := 0; i < x.Rows; i++ {
		in := x.Row(i)
		o := out.Row(i)
		for c := 0; c < p.In.C; c++ {
			o[c] = tensor.Mean(in[c*hw : (c+1)*hw])
		}
	}
	return out
}

// Backward spreads each channel gradient uniformly over its positions.
func (p *GlobalAvgPool) Backward(dout *tensor.Matrix) *tensor.Matrix {
	hw := p.In.H * p.In.W
	inv := 1 / float64(hw)
	dx := tensor.NewMatrix(p.rows, p.In.Dim())
	for i := 0; i < dout.Rows; i++ {
		dr := dout.Row(i)
		dxr := dx.Row(i)
		for c := 0; c < p.In.C; c++ {
			g := dr[c] * inv
			seg := dxr[c*hw : (c+1)*hw]
			for j := range seg {
				seg[j] = g
			}
		}
	}
	return dx
}

// Params returns nothing: pooling is stateless.
func (p *GlobalAvgPool) Params() []Param { return nil }

var _ Layer = (*GlobalAvgPool)(nil)
