package nn

import (
	"fmt"
	"math"

	"sapspsgd/internal/rng"
	"sapspsgd/internal/tensor"
)

// Dense is a fully connected layer: y = x·Wᵀ + b.
type Dense struct {
	InDim, OutDim int
	w             *tensor.Matrix // OutDim × InDim
	b             []float64
	dw            *tensor.Matrix
	db            []float64
	x             *tensor.Matrix // cached input
}

// NewDense returns a dense layer with He-initialized weights.
func NewDense(in, out int, r *rng.Source) *Dense {
	if in < 1 || out < 1 {
		panic(fmt.Sprintf("nn: Dense(%d,%d)", in, out))
	}
	d := &Dense{
		InDim:  in,
		OutDim: out,
		w:      tensor.NewMatrix(out, in),
		b:      make([]float64, out),
		dw:     tensor.NewMatrix(out, in),
		db:     make([]float64, out),
	}
	std := math.Sqrt(2 / float64(in))
	for i := range d.w.Data {
		d.w.Data[i] = std * r.NormFloat64()
	}
	return d
}

// Forward computes the affine map for the batch.
func (d *Dense) Forward(x *tensor.Matrix, train bool) *tensor.Matrix {
	if x.Cols != d.InDim {
		panic(fmt.Sprintf("nn: Dense input %d, want %d", x.Cols, d.InDim))
	}
	if train {
		d.x = x
	}
	out := tensor.NewMatrix(x.Rows, d.OutDim)
	for i := 0; i < x.Rows; i++ {
		row := x.Row(i)
		o := out.Row(i)
		for j := 0; j < d.OutDim; j++ {
			o[j] = tensor.Dot(d.w.Row(j), row) + d.b[j]
		}
	}
	return out
}

// Backward accumulates dW, db and returns dx.
func (d *Dense) Backward(dout *tensor.Matrix) *tensor.Matrix {
	if d.x == nil {
		panic("nn: Dense.Backward before training Forward")
	}
	dx := tensor.NewMatrix(d.x.Rows, d.InDim)
	for i := 0; i < d.x.Rows; i++ {
		xr := d.x.Row(i)
		dr := dout.Row(i)
		dxr := dx.Row(i)
		for j, g := range dr {
			if g == 0 {
				continue
			}
			d.db[j] += g
			tensor.Axpy(g, xr, d.dw.Row(j))
			tensor.Axpy(g, d.w.Row(j), dxr)
		}
	}
	d.x = nil
	return dx
}

// Params returns the weight and bias tensors.
func (d *Dense) Params() []Param {
	return []Param{
		{Name: "dense.w", Data: d.w.Data, Grad: d.dw.Data},
		{Name: "dense.b", Data: d.b, Grad: d.db},
	}
}

var _ Layer = (*Dense)(nil)
