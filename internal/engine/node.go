package engine

import (
	"fmt"

	"sapspsgd/internal/core"
)

// RoundContext is the per-round, per-node view of the coordinator's control
// message: everything a Node or Codec may condition on.
type RoundContext struct {
	// Round is t, the round index.
	Round int
	// Seed is the coordinator's broadcast mask seed s.
	Seed uint64
	// Self is this node's rank.
	Self int
	// N is the total node count (trainers plus, for hub patterns, the
	// server rank).
	N int
	// Plan is the full control message (peer table, active set).
	Plan core.RoundPlan
}

// PeerMsg is one decoded inbound message delivered to Node.Merge.
type PeerMsg struct {
	// From is the sender's rank, or -1 for a collective reduction result
	// (the element-wise sum over all participants).
	From int
	// Vals is the sender's payload decoded with the sender's codec; its
	// exact semantics are codec-specific (see Codec.Decode). Merge may
	// mutate it.
	Vals []float64
	// Words is the raw wire payload, for nodes that need the explicit
	// support of a sparse encoding (parse with SparseWords). Nil for
	// collective results.
	Words []float64
	// Bytes is the payload's exact wire size.
	Bytes int64
}

// Node is one participant's algorithm-specific state machine, driven by a
// Pattern each round. The call order is pattern-defined: most patterns run
// Compute then Merge; the hub pattern delivers the server's downlink to a
// worker's Merge *before* its Compute (pull → train → push).
type Node interface {
	// Compute runs the node's local work for the round and returns the
	// training loss (math.NaN() for nodes that do not train, e.g. a
	// parameter server) and the dense vector to share this round. The
	// returned slice may be node-owned scratch; it must stay valid until
	// the round completes.
	Compute(ctx RoundContext) (loss float64, out []float64, err error)
	// Merge folds the round's inbound messages into local state.
	Merge(ctx RoundContext, msgs []PeerMsg) error
}

// Flow is one node's measured traffic with one peer within a round,
// sender-attributed: Sent is what this node's codec actually encoded and
// shipped, Recv what it measured arriving.
type Flow struct {
	Peer int
	Sent int64
	Recv int64
}

// NodeReport is the outcome of one node's round.
type NodeReport struct {
	// Loss is the local training loss (NaN when the node does not train).
	Loss float64
	// Trained reports whether Loss participates in the round mean.
	Trained bool
	// PayloadLen is the number of wire words in this node's outbound
	// payload (the shared-mask population count for the masked codec).
	PayloadLen int
	// Flows lists the node's measured exchanges.
	Flows []Flow
}

// MaskedGossipNode is the SAPS-PSGD worker as an engine Node: local SGD,
// then (when matched by the pairwise pattern) shared-seed masked gossip
// averaging with the single assigned peer. It pairs with the Masked codec —
// the codec extracts the masked payload from the dense parameter vector this
// node shares, and Merge regenerates the identical mask from the broadcast
// seed to interpret the peer's packed values.
type MaskedGossipNode struct {
	W *core.Worker
}

// NewMaskedGossipNode wraps a core worker.
func NewMaskedGossipNode(w *core.Worker) *MaskedGossipNode { return &MaskedGossipNode{W: w} }

// Compute implements Node: Algorithm 2 line 5 (local SGD) and the dense
// parameter snapshot the masked codec sparsifies.
func (n *MaskedGossipNode) Compute(ctx RoundContext) (float64, []float64, error) {
	loss := n.W.LocalSGD()
	return loss, n.W.ParamsScratch(), nil
}

// Merge implements Node: Algorithm 2 lines 6–10 — regenerate the shared
// round mask and average the masked coordinates with the peer's values.
func (n *MaskedGossipNode) Merge(ctx RoundContext, msgs []PeerMsg) error {
	for _, m := range msgs {
		if m.From < 0 {
			return fmt.Errorf("engine: masked gossip node received collective message")
		}
		n.W.RoundMask(ctx.Seed, ctx.Round)
		n.W.MergePeer(m.Vals)
	}
	return nil
}

// CaptureState implements Stateful: the wrapped worker's round-boundary
// state (model checkpoint, loader cursor, optimizer momentum).
func (n *MaskedGossipNode) CaptureState() ([]byte, error) {
	st, err := n.W.CaptureState()
	if err != nil {
		return nil, err
	}
	return gobBlob(st)
}

// RestoreState implements Stateful.
func (n *MaskedGossipNode) RestoreState(data []byte) error {
	var st core.WorkerState
	if err := gobUnblob(data, &st); err != nil {
		return err
	}
	return n.W.RestoreState(st)
}
