package tensor

// Im2Col unrolls a C×H×W image (stored channel-major in img) into the column
// matrix used to express 2-D convolution as a matrix product. The output col
// must have shape (C*kh*kw) × (outH*outW) where
//
//	outH = (H + 2*pad - kh)/stride + 1
//	outW = (W + 2*pad - kw)/stride + 1
//
// Zero padding is implicit: out-of-bounds taps contribute 0.
func Im2Col(img []float64, c, h, w, kh, kw, stride, pad int, col *Matrix) {
	outH := (h+2*pad-kh)/stride + 1
	outW := (w+2*pad-kw)/stride + 1
	if col.Rows != c*kh*kw || col.Cols != outH*outW {
		panic("tensor: Im2Col output shape mismatch")
	}
	for ch := 0; ch < c; ch++ {
		imgCh := img[ch*h*w : (ch+1)*h*w]
		for ky := 0; ky < kh; ky++ {
			for kx := 0; kx < kw; kx++ {
				row := col.Row((ch*kh+ky)*kw + kx)
				idx := 0
				for oy := 0; oy < outH; oy++ {
					iy := oy*stride + ky - pad
					if iy < 0 || iy >= h {
						for ox := 0; ox < outW; ox++ {
							row[idx] = 0
							idx++
						}
						continue
					}
					base := iy * w
					for ox := 0; ox < outW; ox++ {
						ix := ox*stride + kx - pad
						if ix < 0 || ix >= w {
							row[idx] = 0
						} else {
							row[idx] = imgCh[base+ix]
						}
						idx++
					}
				}
			}
		}
	}
}

// Col2Im scatters the column matrix gradient back into image layout,
// accumulating overlapping contributions — the adjoint of Im2Col. img must be
// zeroed by the caller if accumulation from a clean slate is desired.
func Col2Im(col *Matrix, c, h, w, kh, kw, stride, pad int, img []float64) {
	outH := (h+2*pad-kh)/stride + 1
	outW := (w+2*pad-kw)/stride + 1
	if col.Rows != c*kh*kw || col.Cols != outH*outW {
		panic("tensor: Col2Im input shape mismatch")
	}
	for ch := 0; ch < c; ch++ {
		imgCh := img[ch*h*w : (ch+1)*h*w]
		for ky := 0; ky < kh; ky++ {
			for kx := 0; kx < kw; kx++ {
				row := col.Row((ch*kh+ky)*kw + kx)
				idx := 0
				for oy := 0; oy < outH; oy++ {
					iy := oy*stride + ky - pad
					if iy < 0 || iy >= h {
						idx += outW
						continue
					}
					base := iy * w
					for ox := 0; ox < outW; ox++ {
						ix := ox*stride + kx - pad
						if ix >= 0 && ix < w {
							imgCh[base+ix] += row[idx]
						}
						idx++
					}
				}
			}
		}
	}
}

// ConvOutSize returns the spatial output size of a convolution/pooling with
// the given geometry.
func ConvOutSize(in, k, stride, pad int) int {
	return (in+2*pad-k)/stride + 1
}
