package nn

import (
	"testing"

	"sapspsgd/internal/rng"
	"sapspsgd/internal/tensor"
)

func expectPanic(t *testing.T, name string, fn func()) {
	t.Helper()
	defer func() {
		if recover() == nil {
			t.Fatalf("%s: expected panic", name)
		}
	}()
	fn()
}

func TestLayerMisusePanics(t *testing.T) {
	r := rng.New(1)
	in := Shape{C: 1, H: 8, W: 8}

	expectPanic(t, "Dense wrong input width", func() {
		d := NewDense(4, 2, r)
		d.Forward(tensor.NewMatrix(1, 5), true)
	})
	expectPanic(t, "Dense backward before forward", func() {
		d := NewDense(4, 2, r)
		d.Backward(tensor.NewMatrix(1, 2))
	})
	expectPanic(t, "Conv2D wrong input", func() {
		c := NewConv2D(in, 2, 3, 1, 1, r)
		c.Forward(tensor.NewMatrix(1, 7), true)
	})
	expectPanic(t, "Conv2D backward before forward", func() {
		c := NewConv2D(in, 2, 3, 1, 1, r)
		c.Backward(tensor.NewMatrix(1, c.OutShape.Dim()))
	})
	expectPanic(t, "BatchNorm backward before forward", func() {
		b := NewBatchNorm2D(in)
		b.Backward(tensor.NewMatrix(1, in.Dim()))
	})
	expectPanic(t, "MaxPool indivisible", func() {
		NewMaxPool2D(Shape{C: 1, H: 7, W: 8}, 2)
	})
	expectPanic(t, "AvgPool indivisible", func() {
		NewAvgPool2D(Shape{C: 1, H: 8, W: 7}, 2)
	})
	expectPanic(t, "Conv2D zero-size output", func() {
		NewConv2D(Shape{C: 1, H: 2, W: 2}, 1, 5, 1, 0, r)
	})
	expectPanic(t, "Dense invalid dims", func() {
		NewDense(0, 3, r)
	})
	expectPanic(t, "ResNet zero blocks", func() {
		NewResNet(in, 3, 0, 1, 1)
	})
	expectPanic(t, "empty batch", func() {
		BatchMatrix(nil)
	})
	expectPanic(t, "label out of range", func() {
		SoftmaxCrossEntropy(tensor.NewMatrix(1, 3), []int{5})
	})
	expectPanic(t, "logits/labels mismatch", func() {
		SoftmaxCrossEntropy(tensor.NewMatrix(2, 3), []int{0})
	})
}

func TestModelParamRegistryConsistency(t *testing.T) {
	m := NewCIFARCNN(Shape{C: 3, H: 8, W: 8}, 4, 0.25, 3)
	total := 0
	for _, p := range m.Params() {
		if len(p.Data) != len(p.Grad) {
			t.Fatalf("%s: data %d grad %d", p.Name, len(p.Data), len(p.Grad))
		}
		if len(p.Data) == 0 {
			t.Fatalf("%s: empty parameter", p.Name)
		}
		total += len(p.Data)
	}
	if total != m.ParamCount() {
		t.Fatalf("registry total %d != ParamCount %d", total, m.ParamCount())
	}
}
