package obs

import (
	"bytes"
	"encoding/json"
	"fmt"
	"testing"
)

func TestRunTrackerLifecycle(t *testing.T) {
	rt := NewRunTracker()
	a := rt.Start("a", "saps", 8, 10)
	b := rt.Start("b", "adpsgd", 4, 20)
	if rt.active.Value() != 2 {
		t.Fatalf("active = %d, want 2", rt.active.Value())
	}
	if a.ID == b.ID {
		t.Fatal("run IDs not unique")
	}
	a.SetRound(5)
	rt.Done(a)
	if rt.active.Value() != 1 {
		t.Fatalf("active after Done = %d, want 1", rt.active.Value())
	}

	var buf bytes.Buffer
	if err := rt.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	var out struct {
		Running []struct {
			Name    string `json:"name"`
			Running bool   `json:"running"`
		} `json:"running"`
		Finished []struct {
			Name    string  `json:"name"`
			Round   int64   `json:"round"`
			Running bool    `json:"running"`
			Seconds float64 `json:"seconds"`
		} `json:"finished"`
	}
	if err := json.Unmarshal(buf.Bytes(), &out); err != nil {
		t.Fatalf("WriteJSON: %v\n%s", err, buf.Bytes())
	}
	if len(out.Running) != 1 || out.Running[0].Name != "b" || !out.Running[0].Running {
		t.Fatalf("running = %+v", out.Running)
	}
	if len(out.Finished) != 1 || out.Finished[0].Name != "a" || out.Finished[0].Round != 5 ||
		out.Finished[0].Running || out.Finished[0].Seconds < 0 {
		t.Fatalf("finished = %+v", out.Finished)
	}
}

// TestRunTrackerBoundedHistory proves a long campaign cannot grow the
// finished list past maxFinishedRuns.
func TestRunTrackerBoundedHistory(t *testing.T) {
	rt := NewRunTracker()
	for i := 0; i < maxFinishedRuns+10; i++ {
		rt.Done(rt.Start(fmt.Sprintf("r%d", i), "saps", 1, 1))
	}
	if len(rt.finished) != maxFinishedRuns {
		t.Fatalf("finished history = %d, want %d", len(rt.finished), maxFinishedRuns)
	}
	// The oldest entries are the ones evicted.
	if rt.finished[0].Name != "r10" {
		t.Fatalf("oldest kept = %s, want r10", rt.finished[0].Name)
	}
}

func TestNilTrackerWriteJSON(t *testing.T) {
	var rt *RunTracker
	var buf bytes.Buffer
	if err := rt.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	var out struct {
		Running  []any `json:"running"`
		Finished []any `json:"finished"`
	}
	if err := json.Unmarshal(buf.Bytes(), &out); err != nil {
		t.Fatalf("nil tracker JSON invalid: %v\n%s", err, buf.Bytes())
	}
}
