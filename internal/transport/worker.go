package transport

import (
	"errors"
	"fmt"
	"net"
	"sync"
	"sync/atomic"

	"sapspsgd/internal/core"
	"sapspsgd/internal/engine"
	"sapspsgd/internal/nn"
)

// ErrCrashed is returned by WorkerClient.Run when the coordinator's fault
// schedule kills this worker: the process tore down abruptly (as a real
// crash would) after flushing its last committed snapshot. Restart the
// worker with Resume set (cmd/worker -resume) to rejoin the training.
var ErrCrashed = errors.New("transport: worker crashed by fault injection (restart with -resume to rejoin)")

// WorkerClient runs one engine node over TCP: it registers with the
// coordinator, assembles its node/pattern/codecs from the broadcast task
// recipe, trains locally, and exchanges encoded payloads with its per-round
// peers over direct worker-to-worker connections. For hub algorithms the
// last rank hosts the parameter server instead of training.
//
// Fault tolerance (DESIGN.md §3): with SnapshotPath set the worker persists
// a versioned snapshot of its committed round-boundary state, and a process
// restarted with Resume rejoins the training from it, bit-identically to a
// worker that had simply been excluded from the missed rounds. During a
// round the worker concurrently watches the coordinator channel for Abort
// (another worker died mid-round): it cancels the attempt, rolls back to the
// round-boundary state, and re-executes the coordinator's re-planned round.
type WorkerClient struct {
	// Logf receives progress lines; nil silences logging.
	Logf func(format string, args ...any)
	// SnapshotPath, when non-empty, persists the worker's state after every
	// committed round (atomic rename), enabling Resume after a crash.
	SnapshotPath string
	// Resume rejoins an in-flight training from SnapshotPath instead of
	// registering fresh: the worker reloads its rank, task, and state from
	// the snapshot and sends a Rejoin handshake.
	Resume bool

	rank  int
	n     int // total node count (trainers + server for hub recipes)
	coord *Conn
	task  TaskSpec

	model   *nn.Model
	node    engine.Node
	pattern engine.Pattern
	codecs  []engine.Codec

	peerLn net.Listener
	addrs  []string
	// pending stashes accepted peer connections that arrived while this
	// worker was waiting for a different peer (multi-peer patterns accept
	// in no guaranteed order); FIFO per sender.
	pending map[int][]*pendingConn
	// seq counts this round's exchanges per peer; both endpoints of every
	// meeting must agree on the sequence number.
	seq map[int]int
	// attempt is the current round's execution attempt (from RoundMsg).
	attempt int

	// aborting flags an in-flight round as cancelled; exchanges bail out.
	aborting atomic.Bool
	// inflight is the peer connection the round goroutine is currently
	// blocked on; the main loop closes it to interrupt the round.
	inflightMu sync.Mutex
	inflight   *Conn

	// boundary is the in-memory round-boundary state captured before the
	// current round's compute, restored on abort; boundaryRound tags it.
	boundary      engine.RankSnapshot
	boundaryRound int
	// pendingSnap is the snapshot produced by the last successful round,
	// held back until the round commits (the coordinator moves on) so a
	// rolled-back attempt can never reach disk.
	pendingSnap *WorkerSnapshot

	// dieAtRound, when non-nil, makes the worker tear down abruptly upon
	// receiving the RoundMsg for that round — the unscheduled-crash test
	// hook (the coordinator is NOT told, exercising the detection path).
	dieAtRound *int
}

// pendingConn is one accepted-but-not-yet-consumed peer connection with its
// opening payload.
type pendingConn struct {
	conn *Conn
	pp   PeerPayload
}

// recvResult is one message (or terminal error) from the coordinator reader.
type recvResult struct {
	msg any
	err error
}

// roundResult is the outcome of one round attempt run by the round goroutine.
type roundResult struct {
	rep engine.NodeReport
	err error
}

// peerError wraps a round failure with the peer whose exchange died, so the
// coordinator can mark the right process dead.
type peerError struct {
	peer int
	err  error
}

func (e *peerError) Error() string { return e.err.Error() }
func (e *peerError) Unwrap() error { return e.err }

// errAborted marks a round attempt cancelled by the coordinator's Abort.
var errAborted = errors.New("transport: round attempt aborted")

// Rank returns the coordinator-assigned rank (valid after Run registers).
func (w *WorkerClient) Rank() int { return w.rank }

func (w *WorkerClient) logf(format string, args ...any) {
	if w.Logf != nil {
		w.Logf(format, args...)
	}
}

// Run connects to the coordinator at coordAddr, participates in the full
// training, and returns the node's final parameters. peerAddr is the
// address to listen on for peer exchanges ("127.0.0.1:0" for an ephemeral
// port).
func (w *WorkerClient) Run(coordAddr, peerAddr string) ([]float64, error) {
	var err error
	w.peerLn, err = net.Listen("tcp", peerAddr)
	if err != nil {
		return nil, fmt.Errorf("transport: worker peer listen: %w", err)
	}
	defer w.peerLn.Close()

	nc, err := net.Dial("tcp", coordAddr)
	if err != nil {
		return nil, fmt.Errorf("transport: dial coordinator: %w", err)
	}
	w.coord = NewConn(nc)
	defer w.coord.Close()

	if w.Resume {
		err = w.rejoin()
	} else {
		err = w.register()
	}
	if err != nil {
		return nil, err
	}

	// A dedicated reader owns the coordinator's receive side, so the main
	// loop can watch for Abort while a round is in flight.
	msgs := make(chan recvResult, 8)
	go func() {
		for {
			m, err := w.coord.Recv()
			msgs <- recvResult{msg: m, err: err}
			if err != nil {
				return
			}
		}
	}()

	for {
		in := <-msgs
		if in.err != nil {
			return nil, fmt.Errorf("transport: worker %d: %w", w.rank, in.err)
		}
		switch m := in.msg.(type) {
		case MeasureRequest:
			rep := w.measurePeers(m)
			if err := w.coord.Send(rep); err != nil {
				return nil, err
			}
		case RoundMsg:
			if err := w.handleRound(m, msgs); err != nil {
				return nil, err
			}
		case Abort:
			// The round already ended locally (RoundEnd sent, or this
			// worker sat the round out); roll back and acknowledge.
			if err := w.handleBoundaryAbort(m); err != nil {
				return nil, err
			}
		case CrashMsg:
			w.flushSnapshot()
			w.logf("worker %d: fault injection: crashing at round %d", w.rank, m.Round)
			w.coord.Close()
			w.peerLn.Close()
			return nil, ErrCrashed
		case CollectRequest:
			w.flushSnapshot()
			if err := w.coord.Send(FinalModel{Params: w.model.FlatParams(nil)}); err != nil {
				return nil, err
			}
		case Done:
			w.flushSnapshot()
			w.logf("worker %d: done", w.rank)
			return w.model.FlatParams(nil), nil
		default:
			return nil, fmt.Errorf("transport: worker %d: unexpected %T", w.rank, in.msg)
		}
	}
}

// register performs the fresh Hello/Welcome handshake and builds the node.
func (w *WorkerClient) register() error {
	if err := w.coord.Send(Hello{ListenAddr: w.peerLn.Addr().String()}); err != nil {
		return err
	}
	msg, err := w.coord.Recv()
	if err != nil {
		return err
	}
	welcome, ok := msg.(Welcome)
	if !ok {
		return fmt.Errorf("transport: expected Welcome, got %T", msg)
	}
	w.rank = welcome.Rank
	w.n = welcome.N
	w.addrs = welcome.Addrs
	w.task = welcome.Task
	if err := w.buildNode(); err != nil {
		return err
	}
	w.boundaryRound = -1
	// The initial state is committed by definition: persist it so a crash
	// at round 0 is recoverable.
	if w.SnapshotPath != "" {
		snap, err := w.snapshotNow(0)
		if err != nil {
			return err
		}
		if err := SaveWorkerSnapshot(w.SnapshotPath, snap); err != nil {
			return err
		}
	}
	return nil
}

// rejoin reloads the snapshot and performs the Rejoin handshake.
func (w *WorkerClient) rejoin() error {
	if w.SnapshotPath == "" {
		return fmt.Errorf("transport: Resume requires SnapshotPath")
	}
	snap, err := LoadWorkerSnapshot(w.SnapshotPath)
	if err != nil {
		return err
	}
	w.rank = snap.Rank
	w.task = snap.Task
	if err := w.coord.Send(Rejoin{Rank: snap.Rank, NextRound: snap.NextRound, ListenAddr: w.peerLn.Addr().String()}); err != nil {
		return err
	}
	msg, err := w.coord.Recv()
	if err != nil {
		return err
	}
	switch m := msg.(type) {
	case RejoinAck:
		w.n = m.N
		w.addrs = m.Addrs
	case RejoinNack:
		return fmt.Errorf("transport: rejoin rejected: %s", m.Reason)
	default:
		return fmt.Errorf("transport: expected RejoinAck, got %T", msg)
	}
	if err := w.buildNode(); err != nil {
		return err
	}
	if err := engine.RestoreRank(w.node, w.codecs[w.rank], snap.State); err != nil {
		return fmt.Errorf("transport: worker %d restore: %w", w.rank, err)
	}
	w.boundaryRound = -1
	w.logf("worker %d: rejoined from snapshot (state as of round %d)", w.rank, snap.NextRound)
	return nil
}

// buildNode assembles the model, node, pattern, and codec table from the
// task spec — identically whether registering fresh or resuming.
func (w *WorkerClient) buildNode() error {
	w.pending = map[int][]*pendingConn{}
	spec := w.task
	trainers := spec.Trainers(w.n)
	rec := spec.Recipe(trainers)
	if err := rec.Validate(); err != nil {
		return err
	}
	var err error
	w.model, err = spec.BuildModel()
	if err != nil {
		return err
	}
	w.pattern = rec.Pattern()
	w.codecs = rec.Codecs(w.model.ParamCount())
	if rec.Hub() && w.rank == rec.ServerRank() {
		w.node = rec.NewNode(w.rank, w.model, nil, nil)
		w.logf("worker %d: parameter server for %q (%d params)", w.rank, rec.Algo, w.model.ParamCount())
	} else {
		shards, _ := spec.BuildShards(trainers)
		w.node = rec.NewNode(w.rank, w.model, shards[w.rank], nil)
		w.logf("worker %d: ready for %q (%d params, %d local samples)",
			w.rank, rec.Algo, w.model.ParamCount(), shards[w.rank].Len())
	}
	return nil
}

// snapshotNow captures the current state as an on-disk snapshot valid from
// nextRound.
func (w *WorkerClient) snapshotNow(nextRound int) (*WorkerSnapshot, error) {
	st, err := engine.CaptureRank(w.node, w.codecs[w.rank])
	if err != nil {
		return nil, err
	}
	return &WorkerSnapshot{
		Version:   WorkerSnapshotVersion,
		Rank:      w.rank,
		NextRound: nextRound,
		Task:      w.task,
		State:     st,
	}, nil
}

// flushSnapshot persists the held-back snapshot of the last successful
// round, now known to be committed.
func (w *WorkerClient) flushSnapshot() {
	if w.pendingSnap == nil || w.SnapshotPath == "" {
		return
	}
	if err := SaveWorkerSnapshot(w.SnapshotPath, w.pendingSnap); err != nil {
		w.logf("worker %d: snapshot write failed: %v", w.rank, err)
	}
	w.pendingSnap = nil
}

// handleRound executes one round attempt from the coordinator's control
// message, watching msgs for a concurrent Abort.
func (w *WorkerClient) handleRound(m RoundMsg, msgs <-chan recvResult) error {
	if m.Addrs != nil {
		w.addrs = m.Addrs
	}
	// A RoundMsg for a later round commits the held-back snapshot.
	if w.pendingSnap != nil && m.Round >= w.pendingSnap.NextRound {
		w.flushSnapshot()
	}
	if w.dieAtRound != nil && *w.dieAtRound == m.Round {
		w.coord.Close()
		w.peerLn.Close()
		return ErrCrashed
	}
	if m.Active != nil && (w.rank >= len(m.Active) || !m.Active[w.rank]) {
		// Not chosen this round: stay silent (the coordinator collects
		// reports from the active set only) and keep state frozen.
		w.boundaryRound = -1
		return nil
	}

	// Capture the round-boundary state for a possible rollback, then run
	// the attempt in its own goroutine so Abort stays deliverable.
	var err error
	w.boundary, err = engine.CaptureRank(w.node, w.codecs[w.rank])
	if err != nil {
		return err
	}
	w.boundaryRound = m.Round
	w.attempt = m.Attempt
	w.seq = map[int]int{}
	w.aborting.Store(false)

	plan := core.RoundPlan{Round: m.Round, Seed: m.Seed, Active: m.Active, Peer: peerTable(m.Peer, w.rank, w.n)}
	ctx := engine.RoundContext{Round: m.Round, Seed: m.Seed, Self: w.rank, N: w.n, Plan: plan}
	done := make(chan roundResult, 1)
	go func() {
		rep, err := engine.WorkerRound(w.node, w.pattern, w.codecs, peerDialer{w}, nil, ctx)
		done <- roundResult{rep: rep, err: err}
	}()

	for {
		select {
		case res := <-done:
			switch {
			case w.aborting.Load():
				return w.rollbackAndAck(m.Round)
			case res.err != nil:
				// A peer died under us: report it, then wait for the
				// coordinator's Abort before rolling back.
				peer := -1
				var pe *peerError
				if errors.As(res.err, &pe) {
					peer = pe.peer
				}
				w.logf("worker %d: round %d attempt %d failed (peer %d): %v", w.rank, m.Round, m.Attempt, peer, res.err)
				if err := w.coord.Send(RoundFailed{Rank: w.rank, Round: m.Round, Peer: peer, Reason: res.err.Error()}); err != nil {
					return err
				}
				if err := w.awaitAbort(m.Round, msgs); err != nil {
					return err
				}
				return w.rollbackAndAck(m.Round)
			default:
				end := RoundEnd{
					Rank:       w.rank,
					Round:      m.Round,
					Attempt:    m.Attempt,
					Loss:       res.rep.Loss,
					Trained:    res.rep.Trained,
					PayloadLen: res.rep.PayloadLen,
					Flows:      res.rep.Flows,
				}
				if err := w.coord.Send(end); err != nil {
					return err
				}
				if w.SnapshotPath != "" {
					snap, err := w.snapshotNow(m.Round + 1)
					if err != nil {
						return err
					}
					w.pendingSnap = snap
				}
				return nil
			}
		case in := <-msgs:
			if in.err != nil {
				return fmt.Errorf("transport: worker %d: %w", w.rank, in.err)
			}
			ab, ok := in.msg.(Abort)
			if !ok || ab.Round != m.Round {
				return fmt.Errorf("transport: worker %d: unexpected %T during round %d", w.rank, in.msg, m.Round)
			}
			w.startAbort()
			// Keep looping: the round goroutine will fail out shortly.
		}
	}
}

// handleBoundaryAbort rolls back a round whose attempt already completed
// locally (or never involved this worker) and acknowledges.
func (w *WorkerClient) handleBoundaryAbort(m Abort) error {
	if w.pendingSnap != nil && w.pendingSnap.NextRound == m.Round+1 {
		// The aborted attempt's snapshot must never commit.
		w.pendingSnap = nil
	}
	if w.boundaryRound == m.Round {
		return w.rollbackAndAck(m.Round)
	}
	return w.coord.Send(AbortAck{Rank: w.rank, Round: m.Round})
}

// awaitAbort consumes coordinator messages until the expected Abort arrives.
func (w *WorkerClient) awaitAbort(round int, msgs <-chan recvResult) error {
	for {
		in := <-msgs
		if in.err != nil {
			return fmt.Errorf("transport: worker %d: %w", w.rank, in.err)
		}
		if ab, ok := in.msg.(Abort); ok && ab.Round == round {
			return nil
		}
	}
}

// rollbackAndAck restores the round-boundary state, drops stashed peer
// connections, and acknowledges the abort.
func (w *WorkerClient) rollbackAndAck(round int) error {
	if w.boundaryRound == round {
		if err := engine.RestoreRank(w.node, w.codecs[w.rank], w.boundary); err != nil {
			return fmt.Errorf("transport: worker %d rollback: %w", w.rank, err)
		}
	}
	if w.pendingSnap != nil && w.pendingSnap.NextRound == round+1 {
		w.pendingSnap = nil
	}
	for peer, list := range w.pending {
		for _, pc := range list {
			pc.conn.Close()
		}
		delete(w.pending, peer)
	}
	w.boundaryRound = -1
	return w.coord.Send(AbortAck{Rank: w.rank, Round: round})
}

// startAbort cancels the in-flight round attempt: flag it, cut the blocked
// peer connection, and wake a pending Accept with the sentinel.
func (w *WorkerClient) startAbort() {
	w.aborting.Store(true)
	w.inflightMu.Lock()
	if w.inflight != nil {
		w.inflight.Close()
	}
	w.inflightMu.Unlock()
	if nc, err := net.Dial("tcp", w.peerLn.Addr().String()); err == nil {
		c := NewConn(nc)
		c.Send(PeerPayload{From: abortSentinel})
		c.Close()
	}
}

// setInflight publishes the connection the round goroutine is about to block
// on (nil clears it).
func (w *WorkerClient) setInflight(c *Conn) {
	w.inflightMu.Lock()
	w.inflight = c
	w.inflightMu.Unlock()
}

// peerTable reconstructs the pairwise peer table from this worker's own
// assignment (only Peer[self] and the symmetric entry are ever read by the
// pairwise pattern; other patterns ignore the table).
func peerTable(peer, self, n int) []int {
	t := make([]int, n)
	for i := range t {
		t[i] = -1
	}
	if self < n {
		t[self] = peer
	}
	if peer >= 0 && peer < n {
		t[peer] = self
	}
	return t
}

// peerDialer adapts the worker's peer connections to engine.Transport, so
// the canonical engine round drives the TCP deployment: the round logic
// lives in internal/engine, and only the payload swap below is
// transport-specific.
type peerDialer struct{ w *WorkerClient }

// Exchange implements engine.Transport.
func (d peerDialer) Exchange(round, self, peer int, payload []float64) ([]float64, error) {
	vals, err := d.w.exchange(round, peer, payload)
	if err != nil && !errors.Is(err, errAborted) {
		return nil, &peerError{peer: peer, err: err}
	}
	return vals, err
}

// exchange swaps encoded payloads with the peer: the lower rank dials, the
// higher rank accepts. Multi-peer patterns can make the accept side receive
// connections out of order, so accepted connections self-identify via their
// opening PeerPayload and are stashed until their exchange comes up; the
// per-(round, peer) sequence number verifies both sides agree on which
// meeting this is.
func (w *WorkerClient) exchange(round, peer int, payload []float64) ([]float64, error) {
	if w.aborting.Load() {
		return nil, errAborted
	}
	seq := w.seq[peer]
	w.seq[peer]++
	out := PeerPayload{Round: round, From: w.rank, Seq: seq, Attempt: w.attempt, Vals: payload}

	if w.rank < peer {
		nc, err := net.Dial("tcp", w.addrs[peer])
		if err != nil {
			return nil, fmt.Errorf("transport: worker %d dial peer %d: %w", w.rank, peer, err)
		}
		conn := NewConn(nc)
		w.setInflight(conn)
		defer w.setInflight(nil)
		defer conn.Close()
		if err := conn.Send(out); err != nil {
			return nil, err
		}
		msg, err := conn.Recv()
		if err != nil {
			if w.aborting.Load() {
				return nil, errAborted
			}
			return nil, err
		}
		pp, ok := msg.(PeerPayload)
		if !ok {
			return nil, fmt.Errorf("transport: worker %d: peer sent %T", w.rank, msg)
		}
		if err := w.checkPayload(pp, round, peer, seq); err != nil {
			return nil, err
		}
		return pp.Vals, nil
	}

	pc, err := w.awaitPeer(round, peer)
	if err != nil {
		return nil, err
	}
	w.setInflight(pc.conn)
	defer w.setInflight(nil)
	defer pc.conn.Close()
	if err := w.checkPayload(pc.pp, round, peer, seq); err != nil {
		return nil, err
	}
	if err := pc.conn.Send(out); err != nil {
		if w.aborting.Load() {
			return nil, errAborted
		}
		return nil, err
	}
	return pc.pp.Vals, nil
}

// awaitPeer returns the oldest stashed connection from peer, accepting (and
// stashing) incoming connections until one arrives. The abort sentinel (a
// self-dialed connection with From == abortSentinel) interrupts the wait
// when the round is being cancelled. Stale payloads — dialed during an
// aborted attempt and parked in the listener's TCP backlog until now — are
// discarded here rather than stashed, so they can never pair with (and
// fail) a re-planned round's exchange.
func (w *WorkerClient) awaitPeer(round, peer int) (*pendingConn, error) {
	for {
		if list := w.pending[peer]; len(list) > 0 {
			pc := list[0]
			w.pending[peer] = list[1:]
			return pc, nil
		}
		nc, err := w.peerLn.Accept()
		if err != nil {
			return nil, fmt.Errorf("transport: worker %d accept peer %d: %w", w.rank, peer, err)
		}
		conn := NewConn(nc)
		msg, err := conn.Recv()
		if err != nil {
			conn.Close()
			if w.aborting.Load() {
				return nil, errAborted
			}
			return nil, fmt.Errorf("transport: worker %d: peer hello: %w", w.rank, err)
		}
		pp, ok := msg.(PeerPayload)
		if !ok {
			conn.Close()
			return nil, fmt.Errorf("transport: worker %d: accepted %T", w.rank, msg)
		}
		if pp.From == abortSentinel {
			conn.Close()
			if w.aborting.Load() {
				return nil, errAborted
			}
			continue // stale sentinel from an already-resolved abort
		}
		if pp.Round < round || (pp.Round == round && pp.Attempt < w.attempt) {
			conn.Close()
			continue // stale payload from an aborted attempt's backlog
		}
		w.pending[pp.From] = append(w.pending[pp.From], &pendingConn{conn: conn, pp: pp})
	}
}

// checkPayload validates an inbound payload's routing metadata, including
// the attempt number (a stale payload from an aborted attempt must never
// pair with a re-planned round's exchange).
func (w *WorkerClient) checkPayload(pp PeerPayload, round, peer, seq int) error {
	if pp.Round != round || pp.From != peer || pp.Seq != seq || pp.Attempt != w.attempt {
		return fmt.Errorf("transport: worker %d: stale payload round=%d from=%d seq=%d attempt=%d, want round=%d from=%d seq=%d attempt=%d",
			w.rank, pp.Round, pp.From, pp.Seq, pp.Attempt, round, peer, seq, w.attempt)
	}
	return nil
}
