// Package spectral computes the eigenvalue quantities that SAPS-PSGD's
// convergence theory depends on: Assumption 3 requires the second largest
// eigenvalue ρ of E[WᵀW] to be strictly below 1, and Lemma 2 predicts that
// masked gossip contracts disagreement at rate (q + p·ρ²) per round.
package spectral

import (
	"math"

	"sapspsgd/internal/graph"
	"sapspsgd/internal/rng"
	"sapspsgd/internal/tensor"
)

// PowerIteration returns the dominant eigenvalue and eigenvector of the
// symmetric matrix a, using iters rounds of power iteration starting from a
// deterministic pseudo-random vector. The eigenvector is unit-norm.
func PowerIteration(a *tensor.Matrix, iters int) (float64, []float64) {
	return powerDeflated(a, iters, nil)
}

// powerDeflated runs power iteration while continuously re-orthogonalizing
// against the given (unit-norm) vectors, computing the dominant eigenpair of
// a restricted to their orthogonal complement.
func powerDeflated(a *tensor.Matrix, iters int, against [][]float64) (float64, []float64) {
	return powerDeflatedOp(a.Rows, func(dst, src []float64) {
		copy(dst, tensor.MatVec(a, src))
	}, iters, against)
}

// powerDeflatedOp is powerDeflated over an abstract symmetric operator:
// apply must write the operator applied to src into dst (the slices never
// alias). This lets large-N callers supply an O(N) matvec and skip the dense
// matrix entirely.
func powerDeflatedOp(n int, apply func(dst, src []float64), iters int, against [][]float64) (float64, []float64) {
	if n == 0 {
		return 0, nil
	}
	r := rng.New(0x5eed)
	v := make([]float64, n)
	for i := range v {
		v[i] = r.NormFloat64()
	}
	orthogonalize(v, against)
	normalize(v)
	lambda := 0.0
	w := make([]float64, n)
	tmp := make([]float64, n)
	for it := 0; it < iters; it++ {
		apply(w, v)
		orthogonalize(w, against)
		nw := tensor.Norm2(w)
		if nw == 0 {
			return 0, v
		}
		tensor.Scale(1/nw, w)
		apply(tmp, w)
		lambda = tensor.Dot(w, tmp)
		v, w = w, v
	}
	return lambda, v
}

// SecondLargestEigenvalue returns the second largest eigenvalue (by absolute
// value among the remainder after deflating the dominant one) of the
// symmetric matrix a.
func SecondLargestEigenvalue(a *tensor.Matrix, iters int) float64 {
	_, v1 := powerDeflated(a, iters, nil)
	l2, _ := powerDeflated(a, iters, [][]float64{v1})
	return l2
}

// RhoOfExpectedWtW returns ρ: the second largest eigenvalue of E[WᵀW], where
// the expectation is the arithmetic mean over the sampled gossip matrices.
// For the doubly stochastic W the dominant eigenpair is (1, 1/√n); ρ < 1
// certifies Assumption 3 (the PC edges form a connected graph).
func RhoOfExpectedWtW(ws []*tensor.Matrix, iters int) float64 {
	if len(ws) == 0 {
		return math.NaN()
	}
	n := ws[0].Rows
	e := tensor.NewMatrix(n, n)
	for _, w := range ws {
		wtw := tensor.MatMul(w.T(), w)
		tensor.Axpy(1/float64(len(ws)), wtw.Data, e.Data)
	}
	// Deflate the known dominant eigenvector 1/√n exactly rather than
	// estimating it: doubly stochastic WᵀW always fixes the uniform vector.
	one := make([]float64, n)
	for i := range one {
		one[i] = 1 / math.Sqrt(float64(n))
	}
	l2, _ := powerDeflated(e, iters, [][]float64{one})
	return l2
}

// RhoOfMatchings is RhoOfExpectedWtW computed matrix-free from the sampled
// matchings themselves. A matching's gossip matrix is symmetric and
// idempotent (WᵀW = W² = W), so E[WᵀW] equals the arithmetic mean of the
// matching operators, and each power-iteration step costs O(samples·N)
// with no N×N matrix anywhere — the form that scales to 50k-node fleets.
func RhoOfMatchings(ms []graph.Matching, iters int) float64 {
	if len(ms) == 0 {
		return math.NaN()
	}
	n := len(ms[0])
	scale := 1 / float64(len(ms))
	apply := func(dst, src []float64) {
		for i := range dst {
			dst[i] = 0
		}
		for _, m := range ms {
			for v, p := range m {
				if p == -1 {
					dst[v] += scale * src[v]
				} else {
					dst[v] += scale * 0.5 * (src[v] + src[p])
				}
			}
		}
	}
	one := make([]float64, n)
	for i := range one {
		one[i] = 1 / math.Sqrt(float64(n))
	}
	l2, _ := powerDeflatedOp(n, apply, iters, [][]float64{one})
	return l2
}

// MixingRate returns the per-round contraction factor (q + p·ρ²) of Lemma 2
// for mask keep-probability p = 1/c and gossip spectral value ρ.
func MixingRate(p, rho float64) float64 {
	q := 1 - p
	return q + p*rho*rho
}

func orthogonalize(v []float64, against [][]float64) {
	for _, u := range against {
		tensor.Axpy(-tensor.Dot(v, u), u, v)
	}
}

func normalize(v []float64) {
	n := tensor.Norm2(v)
	if n > 0 {
		tensor.Scale(1/n, v)
	}
}
