//go:build !linux

package profiling

import "runtime"

// PeakRSS approximates the process's peak resident memory on platforms
// without /proc: runtime.MemStats.Sys is the address space obtained from
// the OS — an upper-bound proxy for the true high-water mark that still
// catches an accidental O(N²) blow-up, which is all the BENCH gating needs.
func PeakRSS() int64 {
	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)
	return int64(ms.Sys)
}

// ResetPeakRSS is a no-op without kernel support; readings stay monotone
// within the process (conservative, never under-reported).
func ResetPeakRSS() {}
