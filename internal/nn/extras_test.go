package nn

import (
	"bytes"
	"math"
	"testing"

	"sapspsgd/internal/rng"
	"sapspsgd/internal/tensor"
)

func TestDropoutInferenceIsIdentity(t *testing.T) {
	d := NewDropout(0.5, 1)
	x := tensor.MatrixFrom(1, 4, []float64{1, -2, 3, 0})
	out := d.Forward(x, false)
	for i := range x.Data {
		if out.Data[i] != x.Data[i] {
			t.Fatal("inference dropout not identity")
		}
	}
}

func TestDropoutPreservesExpectation(t *testing.T) {
	d := NewDropout(0.3, 5)
	x := tensor.NewMatrix(1, 10000)
	tensor.Fill(x.Data, 1)
	out := d.Forward(x, true)
	mean := tensor.Mean(out.Data)
	if math.Abs(mean-1) > 0.05 {
		t.Fatalf("inverted dropout mean %v, want ~1", mean)
	}
	zeros := 0
	for _, v := range out.Data {
		if v == 0 {
			zeros++
		}
	}
	rate := float64(zeros) / float64(len(out.Data))
	if math.Abs(rate-0.3) > 0.03 {
		t.Fatalf("drop rate %v, want ~0.3", rate)
	}
}

func TestDropoutGradCheck(t *testing.T) {
	// Dropout is a fixed linear map once the mask is drawn — but gradcheck
	// redraws the mask per forward. Instead verify Backward routes exactly
	// the forward mask with the same scale.
	d := NewDropout(0.4, 9)
	x := tensor.NewMatrix(2, 50)
	for i := range x.Data {
		x.Data[i] = 1
	}
	out := d.Forward(x, true)
	dout := tensor.NewMatrix(2, 50)
	tensor.Fill(dout.Data, 1)
	dx := d.Backward(dout)
	scale := 1 / (1 - d.Rate)
	for i := range out.Data {
		if out.Data[i] == 0 && dx.Data[i] != 0 {
			t.Fatal("gradient leaked through dropped unit")
		}
		if out.Data[i] != 0 && math.Abs(dx.Data[i]-scale) > 1e-12 {
			t.Fatalf("surviving gradient %v, want %v", dx.Data[i], scale)
		}
	}
}

func TestDropoutBadRatePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	NewDropout(1.0, 1)
}

func TestAvgPoolForwardBackward(t *testing.T) {
	in := Shape{C: 1, H: 4, W: 4}
	p := NewAvgPool2D(in, 2)
	x := tensor.MatrixFrom(1, 16, []float64{
		1, 2, 0, 4,
		3, 4, 8, 0,
		1, 1, 2, 2,
		1, 1, 2, 2,
	})
	out := p.Forward(x, true)
	want := []float64{2.5, 3, 1, 2}
	for i := range want {
		if out.Data[i] != want[i] {
			t.Fatalf("avgpool = %v, want %v", out.Data, want)
		}
	}
	dout := tensor.MatrixFrom(1, 4, []float64{4, 0, 0, 0})
	dx := p.Backward(dout)
	// Gradient 4 spread over 4 cells = 1 each, upper-left window only.
	if dx.Data[0] != 1 || dx.Data[1] != 1 || dx.Data[4] != 1 || dx.Data[5] != 1 {
		t.Fatalf("avgpool backward = %v", dx.Data)
	}
	if tensor.Sum(dx.Data) != 4 {
		t.Fatal("gradient mass not conserved")
	}
}

func TestGradCheckAvgPoolAndDropoutFreeNet(t *testing.T) {
	in := Shape{C: 2, H: 4, W: 4}
	r := rng.New(3)
	c1 := NewConv2D(in, 3, 3, 1, 1, r)
	ap := NewAvgPool2D(c1.OutShape, 2)
	fc := NewDense(ap.OutShape.Dim(), 3, r)
	m := NewModel("gradcheck-avg", in, 3, c1, NewReLU(), ap, fc)
	x, ys := randomBatch(in, 3, 4, 7)
	checkGradients(t, m, x, ys, 40, 1e-4)
}

func TestLRSchedules(t *testing.T) {
	if got := (ConstantLR(0.1)).LR(999); got != 0.1 {
		t.Fatal("constant")
	}
	sd := StepDecay{Base: 1, Factor: 0.1, Milestones: []int{10, 20}}
	tests := []struct {
		t    int
		want float64
	}{
		{0, 1}, {9, 1}, {10, 0.1}, {19, 0.1}, {20, 0.01}, {100, 0.01},
	}
	for _, tc := range tests {
		if got := sd.LR(tc.t); math.Abs(got-tc.want) > 1e-12 {
			t.Fatalf("StepDecay(%d) = %v, want %v", tc.t, got, tc.want)
		}
	}
	cd := CosineDecay{Base: 1, Floor: 0.1, Horizon: 100}
	if got := cd.LR(0); math.Abs(got-1) > 1e-12 {
		t.Fatalf("cosine start %v", got)
	}
	if got := cd.LR(100); got != 0.1 {
		t.Fatalf("cosine end %v", got)
	}
	mid := cd.LR(50)
	if mid <= 0.1 || mid >= 1 {
		t.Fatalf("cosine mid %v", mid)
	}
	// Monotone non-increasing over the horizon.
	prev := math.Inf(1)
	for i := 0; i <= 100; i += 5 {
		v := cd.LR(i)
		if v > prev+1e-12 {
			t.Fatalf("cosine not monotone at %d", i)
		}
		prev = v
	}
	w := WarmupWrap{Warmup: 10, Inner: ConstantLR(1)}
	if got := w.LR(0); math.Abs(got-0.1) > 1e-12 {
		t.Fatalf("warmup start %v", got)
	}
	if got := w.LR(10); got != 1 {
		t.Fatalf("warmup end %v", got)
	}
}

func TestCheckpointCarriesBatchNormState(t *testing.T) {
	in := Shape{C: 1, H: 8, W: 8}
	m := NewResNet(in, 3, 1, 0.25, 5)
	// Train a little so running stats move off their init values.
	r := rng.New(7)
	x := tensor.NewMatrix(8, in.Dim())
	for i := range x.Data {
		x.Data[i] = 2 + r.NormFloat64()
	}
	ys := []int{0, 1, 2, 0, 1, 2, 0, 1}
	opt := &SGD{LR: 0.05}
	for it := 0; it < 20; it++ {
		m.ZeroGrads()
		logits := m.Forward(x, true)
		_, dl := SoftmaxCrossEntropy(logits, ys)
		m.Backward(dl)
		opt.Step(m)
	}
	refLogits := m.Forward(x, false)

	var buf bytes.Buffer
	if err := m.Save(&buf); err != nil {
		t.Fatal(err)
	}
	restored := NewResNet(in, 3, 1, 0.25, 99)
	if err := restored.Load(&buf); err != nil {
		t.Fatal(err)
	}
	gotLogits := restored.Forward(x, false)
	for i := range refLogits.Data {
		if math.Abs(refLogits.Data[i]-gotLogits.Data[i]) > 1e-12 {
			t.Fatalf("inference differs after reload at %d: %v vs %v — BN state lost",
				i, refLogits.Data[i], gotLogits.Data[i])
		}
	}
}

func TestBatchNormRunningStateRoundTrip(t *testing.T) {
	bn := NewBatchNorm2D(Shape{C: 3, H: 2, W: 2})
	s := bn.RunningState()
	if len(s) != 6 {
		t.Fatalf("state length %d", len(s))
	}
	s[0], s[3] = 7, 9
	bn.SetRunningState(s)
	got := bn.RunningState()
	if got[0] != 7 || got[3] != 9 {
		t.Fatal("state round trip failed")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on bad length")
		}
	}()
	bn.SetRunningState([]float64{1})
}
