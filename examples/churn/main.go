// Churn: SAPS-PSGD under dynamic membership — the robustness scenario the
// paper motivates (workers join/leave due to battery, connectivity, ...).
// Compares a stable 16-worker run against one where each worker drops out
// with 10% probability per round and rejoins with 50%.
//
//	go run ./examples/churn
package main

import (
	"fmt"

	saps "sapspsgd"
	"sapspsgd/internal/algos"
)

func main() {
	const workers, rounds = 16, 150
	train, valid := saps.MNISTLike(2048, 512, 21)
	shards := saps.PartitionIID(train, workers, 2)
	in := saps.Shape{C: 1, H: 28, W: 28}
	fc := saps.FleetConfig{
		N:       workers,
		Factory: func() *saps.Model { return saps.NewMNISTCNN(in, 10, 0.25, 7) },
		Shards:  shards,
		LR:      0.05,
		Batch:   16,
		Seed:    1,
	}
	cfg := saps.DefaultConfig(workers)
	cfg.Batch = 16
	bw := saps.RandomUniform(workers, 0, 5, 3)
	trainCfg := saps.TrainConfig{Rounds: rounds, EvalEvery: 50, Valid: valid}

	stable := saps.Run(saps.NewSAPS(fc, bw, cfg), bw, trainCfg)
	churned := algos.NewSAPSChurn(fc, bw, cfg, algos.ChurnModel{
		LeaveProb: 0.10,
		JoinProb:  0.50,
		MinActive: workers / 2,
	})
	churnRes := saps.Run(churned, bw, trainCfg)

	minActive, maxActive := workers, 0
	for _, a := range churned.ActiveHistory {
		if a < minActive {
			minActive = a
		}
		if a > maxActive {
			maxActive = a
		}
	}
	fmt.Printf("stable : final accuracy %.2f%%  traffic %.3f MB/worker\n",
		100*stable.Final().ValAcc, stable.Final().TrafficMB)
	fmt.Printf("churned: final accuracy %.2f%%  traffic %.3f MB/worker  (active workers ranged %d..%d of %d)\n",
		100*churnRes.Final().ValAcc, churnRes.Final().TrafficMB, minActive, maxActive, workers)
	fmt.Println("\nNo recovery protocol is needed: returning workers re-synchronize through the masked gossip itself.")
}
