package obs

import (
	"encoding/json"
	"io"
	"net/http"
	"strings"
	"testing"
)

// get fetches a path from the test server and returns the body and
// content type.
func get(t *testing.T, srv *Server, path string) (string, string) {
	t.Helper()
	resp, err := http.Get("http://" + srv.Addr + path)
	if err != nil {
		t.Fatalf("GET %s: %v", path, err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET %s: status %d", path, resp.StatusCode)
	}
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return string(body), resp.Header.Get("Content-Type")
}

func TestServerEndpoints(t *testing.T) {
	m := New()
	m.Engine.RoundsTotal.Add(17)
	r := m.Runs.Start("saps-512", "saps", 512, 300)
	r.SetRound(42)
	srv, err := StartServer("127.0.0.1:0", m)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	body, ct := get(t, srv, "/metrics")
	if !strings.HasPrefix(ct, "text/plain") {
		t.Fatalf("/metrics content type = %q", ct)
	}
	for _, want := range []string{
		"# TYPE sapspsgd_engine_rounds_total counter",
		"sapspsgd_engine_rounds_total 17",
		"sapspsgd_engine_round_seconds_bucket{le=\"+Inf\"} 0",
		"sapspsgd_runs_active 1",
	} {
		if !strings.Contains(body, want) {
			t.Fatalf("/metrics missing %q in:\n%s", want, body)
		}
	}

	body, ct = get(t, srv, "/metrics.json")
	if !strings.HasPrefix(ct, "application/json") {
		t.Fatalf("/metrics.json content type = %q", ct)
	}
	var snap map[string]any
	if err := json.Unmarshal([]byte(body), &snap); err != nil {
		t.Fatalf("/metrics.json not valid JSON: %v", err)
	}
	if _, ok := snap["sapspsgd_engine_rounds_total"]; !ok {
		t.Fatal("/metrics.json missing engine rounds counter")
	}

	body, _ = get(t, srv, "/healthz")
	if strings.TrimSpace(body) != "ok" {
		t.Fatalf("/healthz = %q", body)
	}

	body, _ = get(t, srv, "/runs")
	var runs struct {
		Running []struct {
			Name  string `json:"name"`
			Round int64  `json:"round"`
		} `json:"running"`
		Finished []any `json:"finished"`
	}
	if err := json.Unmarshal([]byte(body), &runs); err != nil {
		t.Fatalf("/runs not valid JSON: %v", err)
	}
	if len(runs.Running) != 1 || runs.Running[0].Name != "saps-512" || runs.Running[0].Round != 42 {
		t.Fatalf("/runs running = %+v", runs.Running)
	}

	// pprof rides on the same mux; cmdline is the cheapest handler.
	if body, _ = get(t, srv, "/debug/pprof/cmdline"); body == "" {
		t.Fatal("/debug/pprof/cmdline returned nothing")
	}
}

func TestServerCloseNil(t *testing.T) {
	var s *Server
	if err := s.Close(); err != nil {
		t.Fatalf("nil Server.Close = %v", err)
	}
}
