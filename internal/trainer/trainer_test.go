package trainer

import (
	"testing"

	"sapspsgd/internal/algos"
	"sapspsgd/internal/core"
	"sapspsgd/internal/dataset"
	"sapspsgd/internal/gossip"
	"sapspsgd/internal/netsim"
	"sapspsgd/internal/nn"
	"sapspsgd/internal/rng"
)

func setup(t *testing.T, n int) (algos.FleetConfig, *netsim.Bandwidth, *dataset.Dataset) {
	t.Helper()
	tr, va := dataset.TinyTask(400, 4, 31)
	shards := dataset.PartitionIID(tr, n, 1)
	fc := algos.FleetConfig{
		N:       n,
		Factory: func() *nn.Model { return nn.NewMLP(tr.Dim(), []int{16}, 4, 5) },
		Shards:  shards,
		LR:      0.1,
		Batch:   16,
		Seed:    3,
	}
	return fc, netsim.RandomUniform(n, 1, 5, rng.New(7)), va
}

func TestRunProducesMonotoneSeries(t *testing.T) {
	const n = 6
	fc, bw, va := setup(t, n)
	cfg := core.Config{
		Workers: n, Compression: 4, LR: 0.1, Batch: 16, LocalSteps: 1,
		Gossip: gossip.Config{BThres: 2, TThres: 5}, Seed: 3,
	}
	res := Run(algos.NewSAPS(fc, bw, cfg), bw, Config{
		Rounds: 120, EvalEvery: 20, Valid: va, BatchesPerEpoch: 4,
	})
	if res.Algorithm != "SAPS-PSGD" {
		t.Fatalf("Algorithm = %q", res.Algorithm)
	}
	if len(res.Records) != 6 {
		t.Fatalf("got %d records, want 6", len(res.Records))
	}
	prevTraffic, prevTime := -1.0, -1.0
	for _, r := range res.Records {
		if r.TrafficMB < prevTraffic || r.TimeSec < prevTime {
			t.Fatalf("traffic/time not monotone: %+v", r)
		}
		prevTraffic, prevTime = r.TrafficMB, r.TimeSec
		if r.Epoch <= 0 {
			t.Fatalf("epoch not filled: %+v", r)
		}
	}
	final := res.Final()
	if final.Round != 120 {
		t.Fatalf("final round %d", final.Round)
	}
	if final.ValAcc < 0.6 {
		t.Fatalf("final accuracy %v too low", final.ValAcc)
	}
	if !res.Ledger.ConservationOK() {
		t.Fatal("ledger conservation")
	}
}

func TestFirstReaching(t *testing.T) {
	res := Result{Records: []Record{
		{Round: 10, ValAcc: 0.3, TrafficMB: 1},
		{Round: 20, ValAcc: 0.7, TrafficMB: 2},
		{Round: 30, ValAcc: 0.9, TrafficMB: 3},
	}}
	rec, ok := res.FirstReaching(0.65)
	if !ok || rec.Round != 20 {
		t.Fatalf("FirstReaching = %+v, %v", rec, ok)
	}
	if _, ok := res.FirstReaching(0.99); ok {
		t.Fatal("should not reach 0.99")
	}
}

func TestEvalMeanRestoresHostParams(t *testing.T) {
	fc, _, va := setup(t, 3)
	f := algos.NewFleet(fc)
	before := f.Models[0].FlatParams(nil)
	// Make models differ so the mean is distinct from model 0.
	p1 := f.Models[1].FlatParams(nil)
	for i := range p1 {
		p1[i] += 1
	}
	f.Models[1].SetFlatParams(p1)
	EvalMean(f.Models, va)
	after := f.Models[0].FlatParams(nil)
	for i := range before {
		if before[i] != after[i] {
			t.Fatal("EvalMean did not restore host parameters")
		}
	}
}

func TestConsensusZeroForIdenticalModels(t *testing.T) {
	fc, _, _ := setup(t, 3)
	f := algos.NewFleet(fc)
	if c := Consensus(f.Models); c > 1e-20 {
		t.Fatalf("identical models consensus = %v", c)
	}
	p := f.Models[0].FlatParams(nil)
	p[0] += 3
	f.Models[0].SetFlatParams(p)
	if c := Consensus(f.Models); c <= 0 {
		t.Fatalf("perturbed consensus = %v", c)
	}
}

func TestEmptyModelsEval(t *testing.T) {
	loss, acc := EvalMean(nil, nil)
	if loss != 0 || acc != 0 {
		t.Fatal("empty eval should be zero")
	}
}
