// Package trace records per-round events of a decentralized training run —
// who was matched with whom, over which bandwidth, how many bytes moved,
// whether the round was a forced reconnection — and renders them as CSV for
// offline analysis. The experiment drivers attach a Recorder to SAPS runs
// when round-level introspection is wanted; it costs one append per round.
package trace

import (
	"fmt"
	"io"
	"strconv"
	"strings"

	"sapspsgd/internal/graph"
	"sapspsgd/internal/netsim"
)

// RoundEvent is one round's record.
type RoundEvent struct {
	Round int
	// Pairs are the matched worker pairs (u < v).
	Pairs [][2]int
	// PairMBps holds the link bandwidth of each pair, aligned with Pairs.
	PairMBps []float64
	// Forced reports whether Algorithm 3 injected connectivity-restoring
	// edges this round.
	Forced bool
	// PayloadBytes is the per-direction payload size of each exchange.
	PayloadBytes int64
	// ActiveWorkers counts participants (== n without churn).
	ActiveWorkers int
	// Loss is the mean training loss reported for the round.
	Loss float64
}

// Recorder accumulates round events.
type Recorder struct {
	events []RoundEvent
}

// NewRecorder returns an empty recorder.
func NewRecorder() *Recorder { return &Recorder{} }

// Record appends one round's event, deriving pair statistics from the
// matching and the environment.
func (r *Recorder) Record(round int, match graph.Matching, bw *netsim.Bandwidth, forced bool, payloadBytes int64, active int, loss float64) {
	ev := RoundEvent{
		Round:         round,
		Forced:        forced,
		PayloadBytes:  payloadBytes,
		ActiveWorkers: active,
		Loss:          loss,
	}
	for v, p := range match {
		if p > v {
			ev.Pairs = append(ev.Pairs, [2]int{v, p})
			ev.PairMBps = append(ev.PairMBps, bw.MBps(v, p))
		}
	}
	r.events = append(r.events, ev)
}

// Events returns the recorded rounds.
func (r *Recorder) Events() []RoundEvent { return r.events }

// Len returns the number of recorded rounds.
func (r *Recorder) Len() int { return len(r.events) }

// MeanMatchedBandwidth returns the across-round mean of the per-round mean
// pair bandwidth — the Fig. 5 summary statistic.
func (r *Recorder) MeanMatchedBandwidth() float64 {
	if len(r.events) == 0 {
		return 0
	}
	total := 0.0
	counted := 0
	for _, ev := range r.events {
		if len(ev.PairMBps) == 0 {
			continue
		}
		s := 0.0
		for _, v := range ev.PairMBps {
			s += v
		}
		total += s / float64(len(ev.PairMBps))
		counted++
	}
	if counted == 0 {
		return 0
	}
	return total / float64(counted)
}

// ForcedFraction returns the share of rounds that needed forced
// reconnection.
func (r *Recorder) ForcedFraction() float64 {
	if len(r.events) == 0 {
		return 0
	}
	forced := 0
	for _, ev := range r.events {
		if ev.Forced {
			forced++
		}
	}
	return float64(forced) / float64(len(r.events))
}

// WriteCSV renders one row per round: round, pairs (u-v|u-v|…), mean pair
// bandwidth, forced, payload bytes, active workers, loss.
func (r *Recorder) WriteCSV(w io.Writer) error {
	if _, err := fmt.Fprintln(w, "round,pairs,mean_pair_mbps,forced,payload_bytes,active,loss"); err != nil {
		return err
	}
	for _, ev := range r.events {
		pairs := make([]string, len(ev.Pairs))
		for i, p := range ev.Pairs {
			pairs[i] = strconv.Itoa(p[0]) + "-" + strconv.Itoa(p[1])
		}
		mean := 0.0
		if len(ev.PairMBps) > 0 {
			for _, v := range ev.PairMBps {
				mean += v
			}
			mean /= float64(len(ev.PairMBps))
		}
		_, err := fmt.Fprintf(w, "%d,%s,%.4f,%t,%d,%d,%.6f\n",
			ev.Round, strings.Join(pairs, "|"), mean, ev.Forced,
			ev.PayloadBytes, ev.ActiveWorkers, ev.Loss)
		if err != nil {
			return err
		}
	}
	return nil
}
