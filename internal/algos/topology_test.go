package algos

import (
	"testing"

	"sapspsgd/internal/netsim"
	"sapspsgd/internal/rng"
	"sapspsgd/internal/topology"
)

func TestDPSGDTopologyVariantsLearn(t *testing.T) {
	const n, rounds = 8, 150
	tops := []Topology{
		topology.Ring(n),
		topology.Torus(2, 4),
		topology.Hypercube(3),
		topology.RandomRegular(n, 3, rng.New(4)),
	}
	for _, tp := range tops {
		tp := tp
		t.Run(tp.Name, func(t *testing.T) {
			t.Parallel()
			fc, bw, va := testSetup(t, n)
			alg := NewDPSGDTopology(fc, tp)
			acc, led := runRounds(t, alg, bw, va, rounds)
			if acc < 0.75 {
				t.Fatalf("%s accuracy %v", tp.Name, acc)
			}
			if !led.ConservationOK() {
				t.Fatal("conservation")
			}
		})
	}
}

func TestDPSGDTopologyTrafficScalesWithDegree(t *testing.T) {
	const n, rounds = 8, 10
	run := func(tp Topology) float64 {
		fc, bw, _ := testSetup(t, n)
		alg := NewDPSGDTopology(fc, tp)
		led := netsim.NewLedger(bw)
		for r := 0; r < rounds; r++ {
			alg.Step(r, led)
		}
		return led.MeanWorkerTrafficMB()
	}
	ring := run(topology.Ring(n))      // degree 2
	cube := run(topology.Hypercube(3)) // degree 3
	if cube <= ring {
		t.Fatalf("hypercube traffic %v not above ring %v", cube, ring)
	}
	ratio := cube / ring
	if ratio < 1.3 || ratio > 1.7 { // 3/2 = 1.5
		t.Fatalf("traffic ratio %v, want ~1.5", ratio)
	}
}

func TestDPSGDTopologyConsensusFasterOnExpander(t *testing.T) {
	// After the same number of rounds, the hypercube's consensus error must
	// be below the ring's (more edges, faster mixing).
	const n, rounds = 8, 60
	consensusOf := func(tp Topology) float64 {
		fc, bw, _ := testSetup(t, n)
		// Non-IID shards exaggerate drift so the comparison is crisp.
		alg := NewDPSGDTopology(fc, tp)
		led := netsim.NewLedger(bw)
		for r := 0; r < rounds; r++ {
			alg.Step(r, led)
		}
		models := alg.Models()
		dim := models[0].ParamCount()
		mean := make([]float64, dim)
		for _, m := range models {
			for j, v := range m.FlatParams(nil) {
				mean[j] += v / float64(len(models))
			}
		}
		tot := 0.0
		for _, m := range models {
			for j, v := range m.FlatParams(nil) {
				d := v - mean[j]
				tot += d * d
			}
		}
		return tot
	}
	ring := consensusOf(topology.Ring(n))
	cube := consensusOf(topology.Hypercube(3))
	if cube >= ring {
		t.Fatalf("hypercube consensus error %v not below ring %v", cube, ring)
	}
}

func TestDPSGDTopologyValidation(t *testing.T) {
	fc, _, _ := testSetup(t, 4)
	func() {
		defer func() {
			if recover() == nil {
				t.Fatal("size mismatch accepted")
			}
		}()
		NewDPSGDTopology(fc, topology.Ring(8))
	}()
}
