package dataset

import (
	"math"
	"testing"
)

func TestSyntheticShapesAndBalance(t *testing.T) {
	tr, va := MNISTLike(1000, 200, 7)
	if tr.Dim() != 28*28 || tr.Classes != 10 {
		t.Fatalf("dim=%d classes=%d", tr.Dim(), tr.Classes)
	}
	if tr.Len() != 1000 || va.Len() != 200 {
		t.Fatalf("sizes %d/%d", tr.Len(), va.Len())
	}
	h := LabelHistogram(tr)
	for k, c := range h {
		if c < 60 || c > 140 {
			t.Fatalf("class %d has %d samples, want ~100", k, c)
		}
	}
	for _, s := range tr.Samples[:10] {
		if len(s.X) != tr.Dim() {
			t.Fatal("sample dim")
		}
	}
}

func TestSyntheticDeterministic(t *testing.T) {
	a, _ := MNISTLike(100, 10, 3)
	b, _ := MNISTLike(100, 10, 3)
	for i := range a.Samples {
		if a.Samples[i].Label != b.Samples[i].Label {
			t.Fatal("labels differ")
		}
		for j := range a.Samples[i].X {
			if a.Samples[i].X[j] != b.Samples[i].X[j] {
				t.Fatal("pixels differ")
			}
		}
	}
}

func TestSyntheticSeedsDiffer(t *testing.T) {
	a, _ := MNISTLike(50, 10, 1)
	b, _ := MNISTLike(50, 10, 2)
	same := true
	for i := range a.Samples {
		for j := range a.Samples[i].X {
			if a.Samples[i].X[j] != b.Samples[i].X[j] {
				same = false
			}
		}
	}
	if same {
		t.Fatal("different seeds produced identical datasets")
	}
}

func TestCIFARLike(t *testing.T) {
	tr, _ := CIFARLike(100, 20, 5)
	if tr.C != 3 || tr.H != 32 || tr.W != 32 || tr.Dim() != 3*32*32 {
		t.Fatalf("geometry wrong: %d %d %d", tr.C, tr.H, tr.W)
	}
}

func TestClassesAreSeparable(t *testing.T) {
	// Nearest-class-mean classification on clean prototypes should beat
	// chance by a wide margin — otherwise the task is unlearnable and all
	// convergence experiments would be meaningless.
	tr, va := MNISTLike(2000, 400, 11)
	dim := tr.Dim()
	means := make([][]float64, tr.Classes)
	counts := make([]int, tr.Classes)
	for k := range means {
		means[k] = make([]float64, dim)
	}
	for _, s := range tr.Samples {
		for j, v := range s.X {
			means[s.Label][j] += v
		}
		counts[s.Label]++
	}
	for k := range means {
		for j := range means[k] {
			means[k][j] /= float64(counts[k])
		}
	}
	correct := 0
	for _, s := range va.Samples {
		best, bestD := -1, math.Inf(1)
		for k := range means {
			d := 0.0
			for j, v := range s.X {
				diff := v - means[k][j]
				d += diff * diff
			}
			if d < bestD {
				bestD, best = d, k
			}
		}
		if best == s.Label {
			correct++
		}
	}
	acc := float64(correct) / float64(va.Len())
	if acc < 0.5 {
		t.Fatalf("nearest-mean accuracy %v — task not separable (chance=0.1)", acc)
	}
}

func TestPartitionIID(t *testing.T) {
	tr, _ := MNISTLike(1000, 10, 13)
	shards := PartitionIID(tr, 32, 1)
	if len(shards) != 32 {
		t.Fatal("shard count")
	}
	total := 0
	for _, s := range shards {
		total += s.Len()
		if s.Len() < 1000/32-1 || s.Len() > 1000/32+1 {
			t.Fatalf("shard size %d unbalanced", s.Len())
		}
	}
	if total != 1000 {
		t.Fatalf("samples lost: %d", total)
	}
	// IID: every shard should contain most classes.
	for i, s := range shards {
		h := LabelHistogram(s)
		nonzero := 0
		for _, c := range h {
			if c > 0 {
				nonzero++
			}
		}
		if nonzero < 5 {
			t.Fatalf("IID shard %d has only %d classes", i, nonzero)
		}
	}
}

func TestPartitionByLabelIsSkewed(t *testing.T) {
	tr, _ := MNISTLike(2000, 10, 17)
	shards := PartitionByLabel(tr, 10, 2, 3)
	total := 0
	skewed := 0
	for _, s := range shards {
		total += s.Len()
		h := LabelHistogram(s)
		nonzero := 0
		for _, c := range h {
			if c > 0 {
				nonzero++
			}
		}
		if nonzero <= 4 {
			skewed++
		}
	}
	if total != 2000 {
		t.Fatalf("samples lost: %d != 2000", total)
	}
	if skewed < 8 {
		t.Fatalf("only %d/10 shards are label-skewed — partition not non-IID", skewed)
	}
}

func TestLoaderCyclesAndShuffles(t *testing.T) {
	tr, _ := TinyTask(50, 4, 19)
	l := NewLoader(tr, 16, 1)
	if l.BatchesPerEpoch() != 3 {
		t.Fatalf("BatchesPerEpoch = %d", l.BatchesPerEpoch())
	}
	seen := 0
	for i := 0; i < 10; i++ {
		xs, ys := l.Next()
		if len(xs) != 16 || len(ys) != 16 {
			t.Fatal("batch size")
		}
		seen += len(xs)
	}
	if l.Epochs < 2 {
		t.Fatalf("Epochs = %d after %d samples drawn from 50", l.Epochs, seen)
	}
}

func TestLoaderBatchClamp(t *testing.T) {
	tr, _ := TinyTask(5, 2, 23)
	l := NewLoader(tr, 100, 1)
	xs, _ := l.Next()
	if len(xs) != tr.Len() {
		t.Fatalf("batch = %d, want clamped to %d", len(xs), tr.Len())
	}
}

func TestLoaderPanics(t *testing.T) {
	tr, _ := TinyTask(5, 2, 23)
	for _, bad := range []func(){
		func() { NewLoader(tr, 0, 1) },
		func() { NewLoader(&Dataset{Classes: 2}, 1, 1) },
		func() { PartitionIID(tr, 0, 1) },
		func() { PartitionByLabel(tr, 0, 1, 1) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatal("expected panic")
				}
			}()
			bad()
		}()
	}
}

// TestPartitionSharesBackingArrays pins the memory model the large-N
// in-process fleets rely on: partitioning copies Sample headers, not pixel
// data, so every shard is a view into the parent dataset and per-rank data
// memory is O(1) beyond the shared arrays.
func TestPartitionSharesBackingArrays(t *testing.T) {
	tr, _ := TinyTask(200, 4, 7)
	parent := make(map[*float64]bool, len(tr.Samples))
	for i := range tr.Samples {
		parent[&tr.Samples[i].X[0]] = true
	}
	for _, shards := range [][]*Dataset{
		PartitionIID(tr, 8, 1),
		PartitionByLabel(tr, 8, 2, 1),
		PartitionDirichlet(tr, 8, 0.3, 4, 1),
		PartitionQuantitySkew(tr, 8, 0.5, 4, 1),
	} {
		for w, s := range shards {
			for k := range s.Samples {
				if !parent[&s.Samples[k].X[0]] {
					t.Fatalf("shard %d sample %d copied its pixel data", w, k)
				}
			}
		}
	}
}
