package rng

import (
	"math"
	"testing"
	"testing/quick"
)

func TestDeterminism(t *testing.T) {
	a := New(42)
	b := New(42)
	for i := 0; i < 1000; i++ {
		if got, want := a.Uint64(), b.Uint64(); got != want {
			t.Fatalf("stream diverged at %d: %d != %d", i, got, want)
		}
	}
}

func TestDifferentSeedsDiffer(t *testing.T) {
	a := New(1)
	b := New(2)
	same := 0
	for i := 0; i < 100; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same > 0 {
		t.Fatalf("seeds 1 and 2 collided %d/100 times", same)
	}
}

func TestDeriveIndependence(t *testing.T) {
	parent := New(7)
	a := parent.Derive(1)
	b := parent.Derive(2)
	a2 := New(7).Derive(1)
	for i := 0; i < 100; i++ {
		if a.Uint64() != a2.Uint64() {
			t.Fatalf("Derive not deterministic at %d", i)
		}
	}
	// a and b should not be identical streams.
	a3 := New(7).Derive(1)
	diff := false
	for i := 0; i < 100; i++ {
		if a3.Uint64() != b.Uint64() {
			diff = true
			break
		}
	}
	if !diff {
		t.Fatal("Derive(1) and Derive(2) produced identical streams")
	}
}

func TestFloat64Range(t *testing.T) {
	r := New(3)
	for i := 0; i < 10000; i++ {
		f := r.Float64()
		if f < 0 || f >= 1 {
			t.Fatalf("Float64 out of [0,1): %v", f)
		}
	}
}

func TestFloat64Mean(t *testing.T) {
	r := New(11)
	const n = 200000
	sum := 0.0
	for i := 0; i < n; i++ {
		sum += r.Float64()
	}
	mean := sum / n
	if math.Abs(mean-0.5) > 0.005 {
		t.Fatalf("uniform mean = %v, want ~0.5", mean)
	}
}

func TestIntnBounds(t *testing.T) {
	r := New(5)
	for _, n := range []int{1, 2, 3, 7, 100, 1 << 20} {
		for i := 0; i < 1000; i++ {
			v := r.Intn(n)
			if v < 0 || v >= n {
				t.Fatalf("Intn(%d) = %d out of range", n, v)
			}
		}
	}
}

func TestIntnUniform(t *testing.T) {
	r := New(9)
	const buckets, draws = 10, 100000
	counts := make([]int, buckets)
	for i := 0; i < draws; i++ {
		counts[r.Intn(buckets)]++
	}
	want := float64(draws) / buckets
	for b, c := range counts {
		if math.Abs(float64(c)-want) > 5*math.Sqrt(want) {
			t.Fatalf("bucket %d count %d deviates from %v", b, c, want)
		}
	}
}

func TestIntnPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Intn(0) did not panic")
		}
	}()
	New(1).Intn(0)
}

func TestNormFloat64Moments(t *testing.T) {
	r := New(13)
	const n = 200000
	var sum, sumSq float64
	for i := 0; i < n; i++ {
		x := r.NormFloat64()
		sum += x
		sumSq += x * x
	}
	mean := sum / n
	variance := sumSq/n - mean*mean
	if math.Abs(mean) > 0.01 {
		t.Fatalf("normal mean = %v, want ~0", mean)
	}
	if math.Abs(variance-1) > 0.02 {
		t.Fatalf("normal variance = %v, want ~1", variance)
	}
}

func TestPermIsPermutation(t *testing.T) {
	r := New(17)
	for _, n := range []int{0, 1, 2, 10, 100} {
		p := r.Perm(n)
		if len(p) != n {
			t.Fatalf("Perm(%d) has len %d", n, len(p))
		}
		seen := make([]bool, n)
		for _, v := range p {
			if v < 0 || v >= n || seen[v] {
				t.Fatalf("Perm(%d) invalid: %v", n, p)
			}
			seen[v] = true
		}
	}
}

func TestMaskDensity(t *testing.T) {
	tests := []struct {
		name string
		p    float64
	}{
		{"c=100", 0.01},
		{"c=10", 0.1},
		{"c=4", 0.25},
		{"dense", 0.9},
	}
	for _, tc := range tests {
		t.Run(tc.name, func(t *testing.T) {
			r := New(23)
			m := make([]bool, 500000)
			r.Mask(m, tc.p)
			ones := 0
			for _, b := range m {
				if b {
					ones++
				}
			}
			got := float64(ones) / float64(len(m))
			sigma := math.Sqrt(tc.p * (1 - tc.p) / float64(len(m)))
			if math.Abs(got-tc.p) > 6*sigma {
				t.Fatalf("mask density %v, want %v ± %v", got, tc.p, 6*sigma)
			}
		})
	}
}

func TestMaskSeedAgreement(t *testing.T) {
	// The protocol invariant: every worker computes the same mask for a given
	// (seed, round). Simulate 32 workers.
	const n = 10000
	ref := MaskSeed(99, 5, n, 0.01)
	for w := 0; w < 32; w++ {
		m := MaskSeed(99, 5, n, 0.01)
		for i := range m {
			if m[i] != ref[i] {
				t.Fatalf("worker %d mask differs at %d", w, i)
			}
		}
	}
}

func TestMaskSeedDiffersAcrossRounds(t *testing.T) {
	const n = 10000
	a := MaskSeed(99, 1, n, 0.5)
	b := MaskSeed(99, 2, n, 0.5)
	diff := 0
	for i := range a {
		if a[i] != b[i] {
			diff++
		}
	}
	if diff < n/4 {
		t.Fatalf("masks for different rounds too similar: %d/%d differ", diff, n)
	}
}

func TestBernoulliRate(t *testing.T) {
	f := func(seed uint64) bool {
		r := New(seed)
		const n, p = 20000, 0.3
		hits := 0
		for i := 0; i < n; i++ {
			if r.Bernoulli(p) {
				hits++
			}
		}
		rate := float64(hits) / n
		return math.Abs(rate-p) < 6*math.Sqrt(p*(1-p)/n)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkUint64(b *testing.B) {
	r := New(1)
	var sink uint64
	for i := 0; i < b.N; i++ {
		sink += r.Uint64()
	}
	_ = sink
}

func BenchmarkMask(b *testing.B) {
	r := New(1)
	m := make([]bool, 1<<20)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r.Mask(m, 0.01)
	}
}

func TestReseedMatchesNewDerive(t *testing.T) {
	// Reseed's contract: the exact stream of New(seed).Derive(id). Mask
	// regeneration routes through Reseed while the coordinator side uses
	// New/Derive, so divergence would silently break the shared-mask
	// protocol.
	for _, tc := range []struct{ seed, id uint64 }{
		{0, 0}, {1, 1}, {99, 6}, {^uint64(0), 0x9e3779b97f4a7c15}, {12345, 1 << 40},
	} {
		want := New(tc.seed).Derive(tc.id)
		var got Source
		got.Reseed(tc.seed, tc.id)
		for i := 0; i < 100; i++ {
			if g, w := got.Uint64(), want.Uint64(); g != w {
				t.Fatalf("seed=%d id=%d draw %d: Reseed %d != New().Derive() %d", tc.seed, tc.id, i, g, w)
			}
		}
	}
}

func TestGammaMoments(t *testing.T) {
	// Gamma(alpha, 1) has mean alpha and variance alpha; check both within
	// a loose Monte-Carlo tolerance for shapes below and above 1.
	for _, alpha := range []float64{0.3, 1.0, 2.5, 7.0} {
		r := New(42)
		const n = 200000
		var sum, sumSq float64
		for i := 0; i < n; i++ {
			g := r.Gamma(alpha)
			if !(g > 0) {
				t.Fatalf("alpha=%v: non-positive sample %v", alpha, g)
			}
			sum += g
			sumSq += g * g
		}
		mean := sum / n
		variance := sumSq/n - mean*mean
		if math.Abs(mean-alpha) > 0.05*alpha+0.01 {
			t.Errorf("alpha=%v: mean %v", alpha, mean)
		}
		if math.Abs(variance-alpha) > 0.15*alpha+0.02 {
			t.Errorf("alpha=%v: variance %v", alpha, variance)
		}
	}
	defer func() {
		if recover() == nil {
			t.Fatal("Gamma(0) did not panic")
		}
	}()
	New(1).Gamma(0)
}
