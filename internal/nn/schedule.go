package nn

import (
	"fmt"
	"math"
)

// LRSchedule maps a round/iteration index to a learning rate. The paper
// trains with fixed rates (Table II); schedules are provided for the
// extended experiments.
type LRSchedule interface {
	// LR returns the learning rate for iteration t (0-based).
	LR(t int) float64
}

// ConstantLR is a fixed learning rate.
type ConstantLR float64

// LR implements LRSchedule.
func (c ConstantLR) LR(int) float64 { return float64(c) }

// StepDecay multiplies the base rate by Factor at every milestone — the
// classic ResNet schedule.
type StepDecay struct {
	Base       float64
	Factor     float64
	Milestones []int
}

// LR implements LRSchedule.
func (s StepDecay) LR(t int) float64 {
	lr := s.Base
	for _, m := range s.Milestones {
		if t >= m {
			lr *= s.Factor
		}
	}
	return lr
}

// CosineDecay anneals from Base to Floor over Horizon iterations, then
// stays at Floor.
type CosineDecay struct {
	Base    float64
	Floor   float64
	Horizon int
}

// LR implements LRSchedule.
func (c CosineDecay) LR(t int) float64 {
	if c.Horizon <= 0 {
		panic(fmt.Sprintf("nn: cosine horizon %d", c.Horizon))
	}
	if t >= c.Horizon {
		return c.Floor
	}
	frac := float64(t) / float64(c.Horizon)
	return c.Floor + 0.5*(c.Base-c.Floor)*(1+math.Cos(math.Pi*frac))
}

// WarmupWrap prefixes any schedule with linear warmup over Warmup
// iterations (from ~0 to the wrapped schedule's value).
type WarmupWrap struct {
	Warmup int
	Inner  LRSchedule
}

// LR implements LRSchedule.
func (w WarmupWrap) LR(t int) float64 {
	base := w.Inner.LR(t)
	if w.Warmup <= 0 || t >= w.Warmup {
		return base
	}
	return base * float64(t+1) / float64(w.Warmup)
}

var (
	_ LRSchedule = ConstantLR(0)
	_ LRSchedule = StepDecay{}
	_ LRSchedule = CosineDecay{Horizon: 1}
	_ LRSchedule = WarmupWrap{}
)
