// Package memtransport is the in-process engine backend: nodes swap their
// encoded payloads through per-directed-pair rendezvous channels, with no
// wire format and no time model. It is the backend behind every
// internal/algos simulation; pair it with engine.CountingLedger for pure
// traffic totals or with a *netsim.Ledger (via simtransport) for
// bandwidth-accounted time.
package memtransport

import (
	"fmt"
	"sync"
)

// Hub pairs in-process nodes for payload swaps. Exchange deposits the
// caller's payload in the self→peer slot and blocks until the peer→self
// slot fills. Slots are FIFO per directed pair, so a pattern may meet the
// same pair several times within a round (hub pull/push, collective
// reduce+gather) as long as both endpoints issue their exchanges in the same
// per-pair order — which every engine pattern guarantees by construction.
// The engine's round barrier guarantees all slots are drained before the
// next round starts. Payload slices are handed over by reference — the
// channel send is the happens-before edge that makes the peer's read
// race-free.
type Hub struct {
	n     int
	mu    sync.Mutex
	slots map[uint64]chan []float64
}

// NewHub returns a hub for n nodes. A single-node hub is legal — it can
// never be asked to exchange, and Exchange rejects any peer it is asked for.
func NewHub(n int) *Hub {
	if n < 1 {
		panic(fmt.Sprintf("memtransport: hub of %d", n))
	}
	return &Hub{n: n, slots: make(map[uint64]chan []float64)}
}

// slot returns (lazily creating) the from→to channel. A small buffer keeps a
// sender from blocking on its own deposit. The blocking Exchange path never
// has more than one message per directed pair outstanding (a pattern's next
// meeting with the same peer starts only after the previous rendezvous
// completed on both sides); the phased Send/Recv path can briefly hold two —
// the sharded collective deposits its next butterfly chunk while the peer is
// still draining the previous phase's — so the capacity is 2.
func (h *Hub) slot(from, to int) chan []float64 {
	key := uint64(uint32(from))<<32 | uint64(uint32(to))
	h.mu.Lock()
	defer h.mu.Unlock()
	c, ok := h.slots[key]
	if !ok {
		c = make(chan []float64, 2)
		h.slots[key] = c
	}
	return c
}

func (h *Hub) check(self, peer int) error {
	if self == peer || self < 0 || self >= h.n || peer < 0 || peer >= h.n {
		return fmt.Errorf("memtransport: worker %d exchanging with %d", self, peer)
	}
	return nil
}

// Exchange implements engine.Transport.
func (h *Hub) Exchange(round, self, peer int, payload []float64) ([]float64, error) {
	if err := h.check(self, peer); err != nil {
		return nil, err
	}
	h.slot(self, peer) <- payload
	return <-h.slot(peer, self), nil
}

// Send implements engine.PhasedTransport: a one-way deposit into the
// self→peer FIFO, with no reciprocal payload. It pairs with the receiver's
// Recv. The sharded runtime's phase barriers guarantee at most two deposits
// per directed pair are ever outstanding, so Send never blocks there.
func (h *Hub) Send(round, self, peer int, payload []float64) error {
	if err := h.check(self, peer); err != nil {
		return err
	}
	h.slot(self, peer) <- payload
	return nil
}

// Recv implements engine.PhasedTransport: take the oldest payload from the
// peer→self FIFO. Under the sharded runtime a Recv only ever consumes a
// deposit made in a strictly earlier (barrier-separated) phase, so it never
// blocks; a Recv with nothing deposited would indicate a malformed phase
// program and would deadlock — which the engine's tests would catch.
func (h *Hub) Recv(round, self, peer int) ([]float64, error) {
	if err := h.check(self, peer); err != nil {
		return nil, err
	}
	return <-h.slot(peer, self), nil
}
