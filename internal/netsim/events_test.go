package netsim

import (
	"bytes"
	"fmt"
	"testing"

	"sapspsgd/internal/rng"
)

// randomEvents draws n events with deliberately colliding times and keys, so
// the ordering tests exercise the tie-breaking chain, not just the time
// comparison.
func randomEvents(n int, src *rng.Source) []Event {
	events := make([]Event, n)
	for i := range events {
		events[i] = Event{
			// A coarse time grid forces many exact-time collisions.
			Time:  float64(src.Intn(n/4+1)) * 0.25,
			Kind:  EventKind(src.Intn(3)),
			Rank:  int32(src.Intn(n)),
			Peer:  int32(src.Intn(n+1) - 1),
			Round: int32(src.Intn(4)),
			Bytes: int64(src.Intn(3)) * 1000,
		}
	}
	return events
}

func drain(q *EventQueue) []Event {
	var out []Event
	for {
		e, ok := q.Pop()
		if !ok {
			return out
		}
		out = append(out, e)
	}
}

// TestEventOrderInsertionInvariant is the determinism property the async
// driver rests on: the drain order of an event set is invariant under the
// order the events were inserted, across 5 seeds at N ∈ {8, 64, 512}.
func TestEventOrderInsertionInvariant(t *testing.T) {
	for _, n := range []int{8, 64, 512} {
		for seed := uint64(1); seed <= 5; seed++ {
			t.Run(fmt.Sprintf("n%d/seed%d", n, seed), func(t *testing.T) {
				src := rng.New(seed).Derive(0xe4e4)
				events := randomEvents(n, src)
				var q EventQueue
				for _, e := range events {
					q.Push(e)
				}
				want := drain(&q)
				for shuffle := 0; shuffle < 4; shuffle++ {
					src.Shuffle(len(events), func(i, j int) {
						events[i], events[j] = events[j], events[i]
					})
					for _, e := range events {
						q.Push(e)
					}
					got := drain(&q)
					for i := range want {
						if got[i] != want[i] {
							t.Fatalf("shuffle %d: event %d = %+v, want %+v", shuffle, i, got[i], want[i])
						}
					}
				}
			})
		}
	}
}

// TestEventOrderSeedStable pins that the drained sequence is a pure function
// of the seed: regenerating the same seeded event set yields a byte-identical
// serialized log, and the sequence is sorted under the total order.
func TestEventOrderSeedStable(t *testing.T) {
	for _, n := range []int{8, 64, 512} {
		for seed := uint64(1); seed <= 5; seed++ {
			logs := make([][]byte, 2)
			for rep := 0; rep < 2; rep++ {
				events := randomEvents(n, rng.New(seed).Derive(0xe4e4))
				var q EventQueue
				for _, e := range events {
					q.Push(e)
				}
				var log EventLog
				prev := Event{Time: -1}
				for {
					e, ok := q.Pop()
					if !ok {
						break
					}
					if eventLess(e, prev) {
						t.Fatalf("n=%d seed=%d: %+v drained after %+v", n, seed, e, prev)
					}
					prev = e
					log.Append(e)
				}
				logs[rep] = log.Bytes()
			}
			if !bytes.Equal(logs[0], logs[1]) {
				t.Fatalf("n=%d seed=%d: two generations of the same seed serialized differently", n, seed)
			}
		}
	}
}

// TestEventTieBreaking pins the documented key order at exactly equal times:
// kind, then rank, then peer.
func TestEventTieBreaking(t *testing.T) {
	var q EventQueue
	q.Push(Event{Time: 1, Kind: EventTransferComplete, Rank: 0})
	q.Push(Event{Time: 1, Kind: EventComputeDone, Rank: 5})
	q.Push(Event{Time: 1, Kind: EventTransferStart, Rank: 2, Peer: 3})
	q.Push(Event{Time: 1, Kind: EventTransferStart, Rank: 2, Peer: 1})
	q.Push(Event{Time: 0.5, Kind: EventTransferComplete, Rank: 9})
	got := drain(&q)
	want := []Event{
		{Time: 0.5, Kind: EventTransferComplete, Rank: 9},
		{Time: 1, Kind: EventComputeDone, Rank: 5},
		{Time: 1, Kind: EventTransferStart, Rank: 2, Peer: 1},
		{Time: 1, Kind: EventTransferStart, Rank: 2, Peer: 3},
		{Time: 1, Kind: EventTransferComplete, Rank: 0},
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("event %d = %+v, want %+v", i, got[i], want[i])
		}
	}
}

// TestLedgerEventView checks the ledger's two views of one round agree: the
// sink receives one start/complete pair per charged endpoint, the stream is
// globally ordered, the latest completion equals the round's wall time, and
// RoundCompletions matches the per-endpoint completion events.
func TestLedgerEventView(t *testing.T) {
	const n = 6
	bw := RandomUniform(n, 5, 50, rng.New(7))
	led := NewLedger(bw)
	var log EventLog
	led.SetSink(&log)

	src := rng.New(42)
	var exchanges int
	for round := 0; round < 4; round++ {
		clockBefore := led.Clock()
		for k := 0; k < 5; k++ {
			i := src.Intn(n)
			j := (i + 1 + src.Intn(n-1)) % n
			led.Exchange(i, j, 1000, 1000)
			exchanges++
		}
		led.ServerTransfer(0, 500, 500, 25)
		wall := led.EndRound()
		if led.Clock() != clockBefore+wall {
			t.Fatalf("round %d: clock %v, want %v + %v", round, led.Clock(), clockBefore, wall)
		}
		comps := led.RoundCompletions()
		maxComp := 0.0
		for _, c := range comps {
			if c > maxComp {
				maxComp = c
			}
		}
		if maxComp != led.Clock() {
			t.Fatalf("round %d: max completion %v, clock %v", round, maxComp, led.Clock())
		}
	}
	// 2 endpoints per exchange + 1 per server transfer, a start/complete pair
	// each.
	wantEvents := (exchanges*2 + 4) * 2
	if log.Len() != wantEvents {
		t.Fatalf("sink has %d events, want %d", log.Len(), wantEvents)
	}
	prev := Event{Time: -1}
	completes := map[int32]float64{}
	for _, e := range log.Events {
		if eventLess(e, prev) && e.Round == prev.Round {
			t.Fatalf("event %+v drained after %+v", e, prev)
		}
		if e.Time < prev.Time {
			t.Fatalf("event stream time went backwards: %+v after %+v", e, prev)
		}
		prev = e
		if e.Kind == EventTransferComplete {
			completes[e.Rank] = e.Time
		}
	}
	for rank, tEnd := range completes {
		if tEnd > led.Clock() {
			t.Fatalf("rank %d completion %v beyond final clock %v", rank, tEnd, led.Clock())
		}
	}
	// The serialized log is deterministic.
	if !bytes.Equal(log.Bytes(), log.Bytes()) {
		t.Fatal("EventLog.Bytes not stable")
	}
	var csv bytes.Buffer
	if err := log.WriteCSV(&csv); err != nil {
		t.Fatal(err)
	}
	if lines := bytes.Count(csv.Bytes(), []byte("\n")); lines != wantEvents+1 {
		t.Fatalf("CSV has %d lines, want %d", lines, wantEvents+1)
	}
}
