package core

import (
	"bytes"
	"fmt"

	"sapspsgd/internal/compress"
	"sapspsgd/internal/dataset"
	"sapspsgd/internal/nn"
	"sapspsgd/internal/tensor"
)

// Worker is one SAPS-PSGD training peer (Algorithm 2). It owns a model, an
// optimizer, and a shard of the training data. It is not safe for concurrent
// use; the harness gives each goroutine its own Worker.
type Worker struct {
	Rank  int
	Model *nn.Model
	Opt   *nn.SGD
	// Loader yields this worker's local minibatches (D_p in the paper).
	Loader *dataset.Loader

	cfg Config

	flat    []float64 // scratch for the flat parameter vector
	mask    []bool    // round mask: worker scratch, or the shared cache's slice
	payload []float64 // scratch for the packed masked payload

	// masks, when set, replaces the per-worker mask scratch with a
	// fleet-shared cache (see ShareMasks).
	masks *compress.MaskCache
}

// NewWorker assembles a worker from its already-constructed model and data
// shard. All workers must be built from the same model seed so that
// ‖X₀ − X̄₀1ᵀ‖² = 0 (the paper's zero-initial-disagreement condition).
func NewWorker(rank int, model *nn.Model, shard *dataset.Dataset, cfg Config) *Worker {
	if err := cfg.Validate(); err != nil {
		panic(err)
	}
	return &Worker{
		Rank:   rank,
		Model:  model,
		Opt:    &nn.SGD{LR: cfg.LR},
		Loader: dataset.NewLoader(shard, cfg.Batch, cfg.Seed+uint64(rank)*7919),
		cfg:    cfg,
	}
}

// LocalSGD runs the configured number of local minibatch SGD steps
// (Algorithm 2 line 5) and returns the mean training loss.
func (w *Worker) LocalSGD() float64 {
	total := 0.0
	for s := 0; s < w.cfg.LocalSteps; s++ {
		xs, ys := w.Loader.Next()
		total += nn.TrainBatch(w.Model, w.Opt, xs, ys)
	}
	return total / float64(w.cfg.LocalSteps)
}

// ShareMasks redirects RoundMask through a fleet-shared cache: ranks hosted
// in the same process regenerate one mask per round between them instead of
// one per rank, so per-rank steady-state memory stays O(model) independent of
// how many ranks the process hosts. The mask is a pure function of
// (seed, round, n, c), so sharing is bit-invisible; the worker only ever
// reads the returned slice.
func (w *Worker) ShareMasks(mc *compress.MaskCache) { w.masks = mc }

// RoundMask regenerates the shared round mask from the coordinator's seed
// (Algorithm 2 line 6). Every worker calls this with identical arguments and
// obtains an identical mask. The mask lands in per-worker scratch (or the
// fleet-shared cache after ShareMasks), so steady-state rounds allocate
// nothing.
func (w *Worker) RoundMask(seed uint64, round int) []bool {
	n := w.Model.ParamCount()
	if w.masks != nil {
		w.mask = w.masks.Get(seed, round, n, w.cfg.Compression)
		return w.mask
	}
	w.mask = compress.MaskInto(w.mask, seed, round, n, w.cfg.Compression)
	return w.mask
}

// MaskedPayload extracts the worker's sparsified model x̃ = x ∘ m as a packed
// value slice (Algorithm 2 line 7) — the message sent to the peer. The wire
// cost is compress.MaskedBytes(len(payload)). The returned slice is scratch
// owned by the worker: it stays valid until the next MaskedPayload call,
// which under the engine's synchronous round barrier is after the peer has
// finished reading it.
func (w *Worker) MaskedPayload() []float64 {
	if w.mask == nil {
		panic("core: MaskedPayload before RoundMask")
	}
	w.flat = w.Model.FlatParams(w.flat)
	w.payload = compress.ExtractInto(w.payload, w.flat, w.mask)
	return w.payload
}

// MergePeer applies the masked gossip average of Eq. (7) with the pairwise
// doubly stochastic W: masked coordinates become the mean of the local and
// peer values; unmasked coordinates are untouched (Algorithm 2 line 10).
func (w *Worker) MergePeer(peerVals []float64) {
	if w.mask == nil {
		panic("core: MergePeer before RoundMask")
	}
	k := compress.CountOnes(w.mask)
	if len(peerVals) != k {
		panic(fmt.Sprintf("core: peer payload %d values, mask has %d", len(peerVals), k))
	}
	w.flat = w.Model.FlatParams(w.flat)
	j := 0
	for i, on := range w.mask {
		if on {
			w.flat[i] = 0.5 * (w.flat[i] + peerVals[j])
			j++
		}
	}
	w.Model.SetFlatParams(w.flat)
}

// WorkerState is a Worker's complete round-boundary state: everything a
// restarted process needs (beyond the shared config, which it re-derives
// from the task spec) to continue the trajectory bit-identically. Model is
// an nn checkpoint (parameters plus per-layer running statistics), Loader
// the minibatch stream cursor, Velocity the optimizer's momentum buffer.
type WorkerState struct {
	Model    []byte
	Loader   dataset.LoaderState
	Velocity []float64
}

// CaptureState snapshots the worker at a round boundary.
func (w *Worker) CaptureState() (WorkerState, error) {
	var buf bytes.Buffer
	if err := w.Model.Save(&buf); err != nil {
		return WorkerState{}, err
	}
	return WorkerState{
		Model:    buf.Bytes(),
		Loader:   w.Loader.State(),
		Velocity: w.Opt.Velocity(),
	}, nil
}

// RestoreState restores a snapshot captured by CaptureState into an
// identically constructed worker (same config, same shard).
func (w *Worker) RestoreState(st WorkerState) error {
	if err := w.Model.Load(bytes.NewReader(st.Model)); err != nil {
		return err
	}
	w.Loader.SetState(st.Loader)
	w.Opt.SetVelocity(st.Velocity)
	return nil
}

// PayloadLen returns the number of values the current mask transmits.
func (w *Worker) PayloadLen() int { return compress.CountOnes(w.mask) }

// CompressionRatio returns the configured mask compression ratio c.
func (w *Worker) CompressionRatio() float64 { return w.cfg.Compression }

// ParamsScratch returns the worker's current flat parameter vector in the
// worker-owned scratch buffer (valid until the next call touching it). The
// engine's masked codec extracts the wire payload from this vector.
func (w *Worker) ParamsScratch() []float64 {
	w.flat = w.Model.FlatParams(w.flat)
	return w.flat
}

// Params returns the worker's current flat parameter vector (a copy).
func (w *Worker) Params() []float64 { return w.Model.FlatParams(nil) }

// Disagreement returns ‖x_w − ref‖₂, used by the consensus tests.
func (w *Worker) Disagreement(ref []float64) float64 {
	w.flat = w.Model.FlatParams(w.flat)
	diff := tensor.GetVecRaw(len(ref)) // fully written by Sub
	defer tensor.PutVec(diff)
	tensor.Sub(diff, w.flat, ref)
	return tensor.Norm2(diff)
}
