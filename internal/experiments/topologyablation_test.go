package experiments

import (
	"strconv"
	"strings"
	"testing"
)

func TestTopologyAblation(t *testing.T) {
	w := quickWorkload().WithRounds(30)
	tb, err := TopologyAblation(w, 8, 7)
	if err != nil {
		t.Fatal(err)
	}
	if len(tb.Rows) != 4 { // ring, hypercube, random-regular, SAPS
		t.Fatalf("rows = %d", len(tb.Rows))
	}
	var sb strings.Builder
	tb.WriteMarkdown(&sb)
	out := sb.String()
	for _, name := range []string{"ring", "hypercube", "random-3-regular", "SAPS-PSGD (dynamic)"} {
		if !strings.Contains(out, name) {
			t.Fatalf("missing %s:\n%s", name, out)
		}
	}
	// The hypercube must have smaller rho than the ring, and SAPS must have
	// the lowest traffic.
	rho := map[string]float64{}
	traffic := map[string]float64{}
	for _, row := range tb.Rows {
		r, err := strconv.ParseFloat(row[1], 64)
		if err != nil {
			t.Fatalf("rho cell %q", row[1])
		}
		tr, err := strconv.ParseFloat(row[3], 64)
		if err != nil {
			t.Fatalf("traffic cell %q", row[3])
		}
		rho[row[0]] = r
		traffic[row[0]] = tr
	}
	if rho["D-PSGD(hypercube-3)"] >= rho["D-PSGD(ring-8)"] {
		t.Fatalf("hypercube rho %v not below ring %v", rho["D-PSGD(hypercube-3)"], rho["D-PSGD(ring-8)"])
	}
	saps := traffic["SAPS-PSGD (dynamic)"]
	for name, v := range traffic {
		if name != "SAPS-PSGD (dynamic)" && saps >= v {
			t.Fatalf("SAPS traffic %v not below %s traffic %v", saps, name, v)
		}
	}
}

func TestTopologyAblationRequiresPowerOfTwo(t *testing.T) {
	if _, err := TopologyAblation(quickWorkload(), 6, 1); err == nil {
		t.Fatal("non-power-of-two n accepted")
	}
}
