// Package core implements SAPS-PSGD itself: the worker update of
// Algorithm 2 (local SGD, shared-seed sparsification, single-peer masked
// gossip averaging) and the coordinator of Algorithm 1 (per-round gossip
// matrix generation with adaptive peer selection, mask-seed broadcast, round
// barriers). The same worker logic runs in-process for the experiment
// harness and over TCP for the deployable system (internal/transport,
// cmd/coordinator, cmd/worker).
package core

import (
	"fmt"

	"sapspsgd/internal/gossip"
)

// Config collects the SAPS-PSGD hyperparameters of Algorithms 1–3.
type Config struct {
	// Workers is the number of training peers n.
	Workers int
	// Compression is the ratio c: each round a worker transmits ~N/c model
	// coordinates (mask keep-probability 1/c). The paper uses c = 100.
	Compression float64
	// LR is the SGD learning rate γ.
	LR float64
	// Batch is the local minibatch size.
	Batch int
	// LocalSteps is the number of local SGD steps per communication round
	// (1 in the paper's algorithm).
	LocalSteps int
	// Gossip carries Algorithm 3's BThres/TThres knobs.
	Gossip gossip.Config
	// Seed drives all deterministic randomness (masks, matchings, init).
	Seed uint64
}

// Validate returns an error describing the first invalid field, if any.
func (c Config) Validate() error {
	switch {
	case c.Workers < 2:
		return fmt.Errorf("core: need at least 2 workers, got %d", c.Workers)
	case c.Compression < 1:
		return fmt.Errorf("core: compression ratio %v < 1", c.Compression)
	case c.LR <= 0:
		return fmt.Errorf("core: learning rate %v <= 0", c.LR)
	case c.Batch < 1:
		return fmt.Errorf("core: batch %d < 1", c.Batch)
	case c.LocalSteps < 1:
		return fmt.Errorf("core: local steps %d < 1", c.LocalSteps)
	case c.Gossip.TThres < 1:
		return fmt.Errorf("core: TThres %d < 1", c.Gossip.TThres)
	default:
		return nil
	}
}

// DefaultConfig returns the paper's settings: c = 100, single local step.
func DefaultConfig(workers int) Config {
	return Config{
		Workers:     workers,
		Compression: 100,
		LR:          0.05,
		Batch:       50,
		LocalSteps:  1,
		Gossip:      gossip.Config{BThres: 0, TThres: 10},
		Seed:        1,
	}
}
