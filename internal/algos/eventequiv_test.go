package algos

import (
	"bytes"
	"encoding/gob"
	"testing"

	"sapspsgd/internal/netsim"
)

// This file is the sync-on-event equivalence suite (the same bar as the
// three-backend tests): every existing synchronous recipe, run against the
// event-driven netsim ledger, must be bit-identical in trajectory and
// byte-identical in ledger to the historical per-round charging path. The
// per-round reference below is the pre-refactor ledger arithmetic, kept
// verbatim; the tee feeds both ledgers the identical charge sequence.

// refLedger is the historical per-round netsim arithmetic: additive
// per-rank round time, EndRound takes the max in index order. Every float
// operation matches the pre-refactor Ledger exactly.
type refLedger struct {
	bw         *netsim.Bandwidth
	latency    float64
	sent, recv []int64
	roundTime  []float64
	totalTime  float64
	serverSent int64
	serverRecv int64
	rounds     int
}

func newRefLedger(bw *netsim.Bandwidth) *refLedger {
	return &refLedger{
		bw:        bw,
		sent:      make([]int64, bw.N),
		recv:      make([]int64, bw.N),
		roundTime: make([]float64, bw.N),
	}
}

func (l *refLedger) Exchange(i, j int, sendBytes, recvBytes int64) {
	l.sent[i] += sendBytes
	l.recv[j] += sendBytes
	l.sent[j] += recvBytes
	l.recv[i] += recvBytes
	mbps := l.bw.MBps(i, j)
	secs := float64(sendBytes+recvBytes)/(mbps*1e6) + l.latency
	l.roundTime[i] += secs
	l.roundTime[j] += secs
}

func (l *refLedger) ServerTransfer(i int, upBytes, downBytes int64, serverMBps float64) {
	l.sent[i] += upBytes
	l.recv[i] += downBytes
	l.serverRecv += upBytes
	l.serverSent += downBytes
	if serverMBps > 0 {
		l.roundTime[i] += float64(upBytes+downBytes)/(serverMBps*1e6) + l.latency
	}
}

func (l *refLedger) EndRound() float64 {
	maxT := 0.0
	for i, t := range l.roundTime {
		if t > maxT {
			maxT = t
		}
		l.roundTime[i] = 0
	}
	l.totalTime += maxT
	l.rounds++
	return maxT
}

// state renders the reference in the event ledger's checkpoint schema, for
// the byte-identity comparison against CaptureState.
func (l *refLedger) state() netsim.LedgerState {
	return netsim.LedgerState{
		SentBytes:  append([]int64(nil), l.sent...),
		RecvBytes:  append([]int64(nil), l.recv...),
		TotalTime:  l.totalTime,
		ServerSent: l.serverSent,
		ServerRecv: l.serverRecv,
		Rounds:     l.rounds,
	}
}

// teeLedger feeds the identical charge sequence to the event-driven ledger
// and the per-round reference. For hub algorithms it replays the
// engine-side hubLedger mapping (which only engages over a bare
// *netsim.Ledger), so both sides see the same ServerTransfer calls a plain
// run would.
type teeLedger struct {
	real      *netsim.Ledger
	ref       *refLedger
	server    int
	links     []float64
	wallReal  []float64
	wallRef   []float64
	roundsRun int
}

func (t *teeLedger) Exchange(i, j int, sendBytes, recvBytes int64) {
	if t.server >= 0 && (i == t.server || j == t.server) {
		worker, up, down := j, recvBytes, sendBytes
		if j == t.server {
			worker, up, down = i, sendBytes, recvBytes
		}
		t.real.ServerTransfer(worker, up, down, t.links[worker])
		t.ref.ServerTransfer(worker, up, down, t.links[worker])
		return
	}
	t.real.Exchange(i, j, sendBytes, recvBytes)
	t.ref.Exchange(i, j, sendBytes, recvBytes)
}

func (t *teeLedger) EndRound() float64 {
	a := t.real.EndRound()
	b := t.ref.EndRound()
	t.wallReal = append(t.wallReal, a)
	t.wallRef = append(t.wallRef, b)
	t.roundsRun++
	return a
}

// hubChassis unwraps the shared engine chassis from the hub algorithms'
// named wrappers (their server rank and link table drive the tee's hub
// mapping); nil for algorithms without one.
func hubChassis(alg Algorithm) *engineAlgo {
	switch v := alg.(type) {
	case *engineAlgo:
		return v
	case *PSPSGD:
		return v.engineAlgo
	case *FedAvg:
		return v.engineAlgo
	case *SFedAvg:
		return v.engineAlgo
	}
	return nil
}

// TestEventLedgerEquivalence: for every synchronous recipe, a run on the
// event-driven ledger (with the event sink attached) is bit-identical in
// model trajectory to a plain run, its per-round wall times and cumulative
// clock match the per-round reference arithmetic bit for bit, and its
// serialized checkpoint is byte-identical to the reference's.
func TestEventLedgerEquivalence(t *testing.T) {
	const n, rounds = 8, 5
	for _, b := range allBaselineBuilders(n) {
		b := b
		t.Run(b.name, func(t *testing.T) {
			t.Parallel()
			fcA, bw, _ := testSetup(t, n)
			fcB, _, _ := testSetup(t, n)
			algA := b.build(fcA, bw)
			algB := b.build(fcB, bw)

			// Run A: event ledger with sink, driven exactly as production
			// runs drive it.
			ledA := netsim.NewLedger(bw)
			var log netsim.EventLog
			ledA.SetSink(&log)

			// Run B: the tee replays the identical charges into a second
			// event ledger and the per-round reference.
			tee := &teeLedger{real: netsim.NewLedger(bw), ref: newRefLedger(bw), server: -1}
			if ea := hubChassis(algB); ea != nil && ea.server >= 0 {
				tee.server = ea.server
				tee.links = ea.links
			}

			for r := 0; r < rounds; r++ {
				algA.Step(r, ledA)
				algB.Step(r, tee)
				pa, pb := algA.Models(), algB.Models()
				for m := range pa {
					va, vb := pa[m].FlatParams(nil), pb[m].FlatParams(nil)
					for j := range va {
						if va[j] != vb[j] {
							t.Fatalf("round %d model %d param %d: event-path %v != tee-path %v", r, m, j, va[j], vb[j])
						}
					}
				}
			}

			// Per-round wall times: event arithmetic == reference, bitwise.
			for r := range tee.wallReal {
				if tee.wallReal[r] != tee.wallRef[r] {
					t.Fatalf("round %d wall: event %v != reference %v", r, tee.wallReal[r], tee.wallRef[r])
				}
			}
			if tee.real.TotalTime() != tee.ref.totalTime {
				t.Fatalf("total time: event %v != reference %v", tee.real.TotalTime(), tee.ref.totalTime)
			}
			if ledA.TotalTime() != tee.ref.totalTime {
				t.Fatalf("plain-run total time %v != reference %v", ledA.TotalTime(), tee.ref.totalTime)
			}

			// Ledger bytes: the serialized checkpoint must be byte-identical
			// to the reference state's encoding.
			got, err := tee.real.CaptureState()
			if err != nil {
				t.Fatal(err)
			}
			var want bytes.Buffer
			if err := gob.NewEncoder(&want).Encode(tee.ref.state()); err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(got, want.Bytes()) {
				t.Fatal("event ledger checkpoint differs from per-round reference encoding")
			}

			// The event stream itself: non-empty, start/complete balanced,
			// globally ordered, and bounded by the final clock.
			if log.Len() == 0 {
				t.Fatal("no events drained")
			}
			starts, completes := 0, 0
			prev := -1.0
			for _, e := range log.Events {
				if e.Time < prev {
					t.Fatalf("event time went backwards: %v after %v", e.Time, prev)
				}
				prev = e.Time
				switch e.Kind {
				case netsim.EventTransferStart:
					starts++
				case netsim.EventTransferComplete:
					completes++
				}
				if e.Time > ledA.TotalTime() {
					t.Fatalf("event at %v beyond final clock %v", e.Time, ledA.TotalTime())
				}
			}
			if starts == 0 || starts != completes {
				t.Fatalf("%d transfer starts vs %d completes", starts, completes)
			}
		})
	}
}
