package nn

import "sapspsgd/internal/tensor"

// ReLU is the rectified linear activation, applied element-wise.
type ReLU struct {
	mask []bool
}

// NewReLU returns a ReLU layer.
func NewReLU() *ReLU { return &ReLU{} }

// Forward clamps negatives to zero, caching the activation mask when
// training.
func (r *ReLU) Forward(x *tensor.Matrix, train bool) *tensor.Matrix {
	out := tensor.NewMatrix(x.Rows, x.Cols)
	if train {
		if len(r.mask) != len(x.Data) {
			r.mask = make([]bool, len(x.Data))
		}
		for i, v := range x.Data {
			if v > 0 {
				out.Data[i] = v
				r.mask[i] = true
			} else {
				r.mask[i] = false
			}
		}
		return out
	}
	for i, v := range x.Data {
		if v > 0 {
			out.Data[i] = v
		}
	}
	return out
}

// Backward gates the upstream gradient by the cached mask.
func (r *ReLU) Backward(dout *tensor.Matrix) *tensor.Matrix {
	dx := tensor.NewMatrix(dout.Rows, dout.Cols)
	for i, v := range dout.Data {
		if r.mask[i] {
			dx.Data[i] = v
		}
	}
	return dx
}

// Params returns nothing: ReLU is stateless.
func (r *ReLU) Params() []Param { return nil }

var _ Layer = (*ReLU)(nil)
