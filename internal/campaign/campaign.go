// Package campaign is the experiment-campaign orchestrator over the
// scenario layer: a strict-schema JSON spec names a base scenario and a
// parameter grid (algorithm, fleet size, rounds, bandwidth environments,
// compression ratio, seeds, engine shard counts), and the package expands
// the grid into a deterministic run matrix, executes the cells concurrently
// across a bounded worker pool, journals every completed cell to an
// append-only manifest so an interrupted campaign resumes without
// re-running finished cells, and aggregates the per-cell results into the
// paper-style artifacts (loss-vs-round and loss-vs-traffic series, per-algo
// traffic totals). cmd/campaign is the CLI driver.
package campaign

import (
	"bytes"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"strconv"
	"strings"

	"sapspsgd/internal/scenario"
)

// SpecSchemaVersion is the campaign file schema this package reads. Bump it
// when a field changes meaning; Parse rejects other versions so stale specs
// fail loudly instead of silently reshaping a sweep.
const SpecSchemaVersion = 1

// Spec is one declarative experiment campaign.
type Spec struct {
	// SchemaVersion must equal SpecSchemaVersion.
	SchemaVersion int `json:"schema_version"`
	// Name identifies the campaign in logs and aggregate artifacts.
	Name string `json:"name"`
	// Base is the path of the base scenario spec every grid cell derives
	// from, resolved relative to the campaign file's directory.
	Base string `json:"base"`
	// Workers bounds the number of cells executing concurrently
	// (0 = GOMAXPROCS). Each cell is itself a full engine run, so modest
	// values usually saturate the machine.
	Workers int `json:"workers,omitempty"`
	// Trace writes a per-round trace CSV (traces/<cell>.csv) for every
	// cell whose algorithm records one (the SAPS family).
	Trace bool `json:"trace,omitempty"`
	// Grid is the parameter grid crossed into the run matrix.
	Grid Grid `json:"grid"`

	// dir is the campaign file's directory, for resolving Base.
	dir string
}

// Grid lists the swept axes. An omitted (empty) axis keeps the base
// scenario's value; the run matrix is the cartesian product of the
// non-empty axes, expanded in the fixed nesting order algo › compression ›
// nodes › rounds › bandwidth › trace › partition › seed › shards (innermost
// varies fastest), so the same spec always yields the same cell ordering.
type Grid struct {
	// Algo sweeps the algorithm (any -algo value the scenario layer
	// accepts, the asynchronous recipes included). Cells whose algorithm is
	// not saps drop the base spec's saps-only blocks (compression, gossip,
	// churn, faults, record_trace, trace membership events — the trace
	// block itself survives as bandwidth-multiplier replay, which is
	// algorithm-agnostic). Synchronous cells drop the base's async block;
	// asynchronous cells (adpsgd, gradpush) require the base to carry one
	// and run unsharded on the event-driven engine, so the shards axis
	// collapses for them.
	Algo []string `json:"algo,omitempty"`
	// Nodes sweeps the trainer count.
	Nodes []int `json:"nodes,omitempty"`
	// Rounds sweeps the round count.
	Rounds []int `json:"rounds,omitempty"`
	// Bandwidth sweeps the link environment; each entry is a full
	// scenario bandwidth block (kind, parameters, jitter) plus an
	// optional name used in cell IDs (defaults to the kind, which must
	// then be unique across the axis).
	Bandwidth []GridBandwidth `json:"bandwidth,omitempty"`
	// Compression sweeps the paper's compression ratio c (≥ 1): a worker
	// transmits ~1/c of its entries. The value lands on each algorithm's
	// own knob — the shared-mask ratio for saps, the sparsifier ratio for
	// topk-psgd / dcd-psgd / s-fedavg (both use the same ratio-c
	// convention). For algorithms without a ratio knob (psgd, d-psgd,
	// ps-psgd, fedavg, qsgd-psgd) the axis collapses: only one cell is
	// generated, with the base spec's parameters.
	Compression []float64 `json:"compression,omitempty"`
	// Traces sweeps the fleet-trace replay; each entry is a full scenario
	// trace block (file, interp, events) plus an optional name used in cell
	// IDs (defaults to the file's base name without extension). An entry
	// with an empty file clears the base's trace block — a static-network
	// control cell — and must carry a name. Trace files resolve against the
	// base scenario's directory, exactly as if the block were written there.
	// Membership events only drive the SAPS family; on other algorithms the
	// entry degrades to bandwidth-multiplier replay (events are dropped).
	Traces []GridTrace `json:"traces,omitempty"`
	// Partition sweeps the data split; each entry is a full scenario
	// partition block (kind, alpha, min_per_node) plus an optional name
	// used in cell IDs (defaults to the kind). A kind-"iid" entry clears
	// the base's partition block.
	Partition []GridPartition `json:"partition,omitempty"`
	// Seeds sweeps the reproducibility seed.
	Seeds []uint64 `json:"seeds,omitempty"`
	// Shards sweeps the engine shard count (the scenario shards field).
	Shards []int `json:"shards,omitempty"`
}

// GridBandwidth is one bandwidth-axis entry: a scenario bandwidth block
// plus the name cell IDs use.
type GridBandwidth struct {
	// Name labels the environment in cell IDs and aggregates. Optional;
	// defaults to the kind.
	Name string `json:"name,omitempty"`
	scenario.BandwidthSpec
}

// label returns the entry's cell-ID label.
func (g *GridBandwidth) label() string {
	if g.Name != "" {
		return g.Name
	}
	return g.Kind
}

// GridTrace is one trace-axis entry: a scenario trace block plus the name
// cell IDs use. An empty File means "no trace" (the base's block is
// cleared), in which case Name is mandatory.
type GridTrace struct {
	// Name labels the trace in cell IDs and aggregates. Optional when File
	// is set; defaults to the file's base name without extension.
	Name string `json:"name,omitempty"`
	scenario.TraceSpec
}

// label returns the entry's cell-ID label.
func (g *GridTrace) label() string {
	if g.Name != "" {
		return g.Name
	}
	base := filepath.Base(g.File)
	return strings.TrimSuffix(base, filepath.Ext(base))
}

// GridPartition is one partition-axis entry: a scenario partition block
// plus the name cell IDs use.
type GridPartition struct {
	// Name labels the split in cell IDs and aggregates. Optional; defaults
	// to the kind.
	Name string `json:"name,omitempty"`
	scenario.PartitionSpec
}

// label returns the entry's cell-ID label.
func (g *GridPartition) label() string {
	if g.Name != "" {
		return g.Name
	}
	return g.Kind
}

// Parse decodes a strict-schema campaign spec: unknown fields are rejected
// and the result is validated. The base path resolves against dir.
func Parse(data []byte, dir string) (*Spec, error) {
	dec := json.NewDecoder(bytes.NewReader(data))
	dec.DisallowUnknownFields()
	var c Spec
	if err := dec.Decode(&c); err != nil {
		return nil, fmt.Errorf("campaign: %w", err)
	}
	if dec.More() {
		return nil, fmt.Errorf("campaign: trailing data after spec")
	}
	c.dir = dir
	if err := c.Validate(); err != nil {
		return nil, err
	}
	return &c, nil
}

// Load reads and parses one campaign file.
func Load(path string) (*Spec, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	c, err := Parse(data, filepath.Dir(path))
	if err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return c, nil
}

// LoadBase loads the campaign's base scenario spec.
func (c *Spec) LoadBase() (*scenario.Spec, error) {
	path := c.Base
	if !filepath.IsAbs(path) {
		path = filepath.Join(c.dir, path)
	}
	return scenario.Load(path)
}

// Validate returns an error describing the first invalid campaign-level
// field, if any. Per-cell scenario validity is checked by Expand, which can
// name the offending cell.
func (c *Spec) Validate() error {
	switch {
	case c.SchemaVersion != SpecSchemaVersion:
		return fmt.Errorf("campaign: schema_version %d, want %d", c.SchemaVersion, SpecSchemaVersion)
	case c.Name == "":
		return fmt.Errorf("campaign: missing name")
	case c.Base == "":
		return fmt.Errorf("campaign: missing base scenario path")
	case c.Workers < 0:
		return fmt.Errorf("campaign %s: %d workers", c.Name, c.Workers)
	}
	g := &c.Grid
	if len(g.Algo) == 0 && len(g.Nodes) == 0 && len(g.Rounds) == 0 && len(g.Bandwidth) == 0 &&
		len(g.Traces) == 0 && len(g.Partition) == 0 &&
		len(g.Compression) == 0 && len(g.Seeds) == 0 && len(g.Shards) == 0 {
		return fmt.Errorf("campaign %s: empty grid (declare at least one axis)", c.Name)
	}
	for _, n := range g.Nodes {
		if n < 1 {
			return fmt.Errorf("campaign %s: grid nodes %d", c.Name, n)
		}
	}
	for _, r := range g.Rounds {
		if r < 1 {
			return fmt.Errorf("campaign %s: grid rounds %d", c.Name, r)
		}
	}
	for _, v := range g.Compression {
		if v < 1 {
			return fmt.Errorf("campaign %s: grid compression ratio %v < 1", c.Name, v)
		}
	}
	for _, s := range g.Shards {
		if s < 1 {
			return fmt.Errorf("campaign %s: grid shards %d", c.Name, s)
		}
	}
	seen := map[string]bool{}
	for i := range g.Bandwidth {
		label := g.Bandwidth[i].label()
		if label == "" {
			return fmt.Errorf("campaign %s: bandwidth entry %d has neither name nor kind", c.Name, i)
		}
		if !safeLabel(label) {
			return fmt.Errorf("campaign %s: bandwidth label %q is not filename-safe (want [A-Za-z0-9][A-Za-z0-9._-]*)", c.Name, label)
		}
		if seen[label] {
			return fmt.Errorf("campaign %s: duplicate bandwidth label %q (give entries distinct names)", c.Name, label)
		}
		seen[label] = true
	}
	seen = map[string]bool{}
	for i := range g.Traces {
		e := &g.Traces[i]
		if e.File == "" && e.Name == "" {
			return fmt.Errorf("campaign %s: trace entry %d has neither file nor name (a no-trace entry needs a name)", c.Name, i)
		}
		label := e.label()
		if !safeLabel(label) {
			return fmt.Errorf("campaign %s: trace label %q is not filename-safe (want [A-Za-z0-9][A-Za-z0-9._-]*)", c.Name, label)
		}
		if seen[label] {
			return fmt.Errorf("campaign %s: duplicate trace label %q (give entries distinct names)", c.Name, label)
		}
		seen[label] = true
	}
	seen = map[string]bool{}
	for i := range g.Partition {
		label := g.Partition[i].label()
		if label == "" {
			return fmt.Errorf("campaign %s: partition entry %d has neither name nor kind", c.Name, i)
		}
		if !safeLabel(label) {
			return fmt.Errorf("campaign %s: partition label %q is not filename-safe (want [A-Za-z0-9][A-Za-z0-9._-]*)", c.Name, label)
		}
		if seen[label] {
			return fmt.Errorf("campaign %s: duplicate partition label %q (give entries distinct names)", c.Name, label)
		}
		seen[label] = true
	}
	return nil
}

// safeLabel reports whether a cell-ID component is filename-safe: cell IDs
// become paths under the output directory (cells/<id>.json,
// traces/<id>.csv), so a label must not smuggle separators or dot-relative
// segments into them.
func safeLabel(s string) bool {
	for i, r := range s {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r >= '0' && r <= '9':
		case i > 0 && (r == '.' || r == '_' || r == '-'):
		default:
			return false
		}
	}
	return s != ""
}

// Cell is one expanded grid point: a fully overridden, validated scenario
// spec plus the identifiers the manifest and aggregates key on.
type Cell struct {
	// Index is the cell's position in the deterministic run matrix.
	Index int
	// ID is the stable, filename-safe cell identifier built from the
	// swept axis values, not the matrix index: appending values to an
	// already-swept axis keeps existing IDs — and their manifest entries —
	// valid. (Sweeping a previously-unswept axis adds a new part to every
	// ID, so those cells re-run.) When every swept axis collapses to the
	// base value the ID is "base".
	ID string
	// SHA is the truncated sha256 of the cell spec's canonical form; the
	// manifest stores it so resume re-runs cells whose definition
	// changed.
	SHA string
	// Spec is the cell's scenario, derived from the campaign base.
	Spec *scenario.Spec
	// Bandwidth is the bandwidth-axis label ("" when the axis is not
	// swept).
	Bandwidth string
	// Trace is the trace-axis label ("" when the axis is not swept).
	Trace string
	// Partition is the partition-axis label ("" when the axis is not
	// swept).
	Partition string
	// Compression is the swept compression ratio c (0 when the axis does
	// not apply to this cell's algorithm or is not swept).
	Compression float64
}

// hasCompressionKnob reports whether the algorithm exposes a compression
// ratio the grid axis can drive.
func hasCompressionKnob(algo string) bool {
	switch algo {
	case "saps", "topk-psgd", "dcd-psgd", "s-fedavg":
		return true
	}
	return false
}

// applyCompression maps the unified ratio c onto the algorithm's own knob.
func applyCompression(s *scenario.Spec, ratio float64) {
	switch s.Algo {
	case "saps":
		s.Compression = ratio
	case "topk-psgd", "dcd-psgd", "s-fedavg":
		s.C = ratio
	}
}

// compact renders a float for cell IDs (shortest round-trip form, "." kept —
// it is filename-safe on every platform the repo targets).
func compact(v float64) string { return strconv.FormatFloat(v, 'g', -1, 64) }

// Expand crosses the grid over the base scenario into the deterministic run
// matrix. Every cell's scenario is validated; the first invalid cell aborts
// the expansion with an error naming it. The same campaign and base specs
// always produce the identical cell sequence (IDs, order, and SHAs).
func (c *Spec) Expand(base *scenario.Spec) ([]Cell, error) {
	g := &c.Grid
	algos := g.Algo
	if len(algos) == 0 {
		algos = []string{base.Algo}
	}
	// Materialize each axis as override closures; nil-value sentinels keep
	// the base value. Using index slices keeps the nesting generic.
	type axis struct {
		n     int
		apply func(s *scenario.Spec, i int)
		part  func(s *scenario.Spec, i int) string
	}
	// curBW/curTrace/curPart carry each axis's label out of its apply
	// closure to the cell under construction (Expand is sequential).
	var curBW, curTrace, curPart string
	oneOrLen := func(n int) int {
		if n == 0 {
			return 1
		}
		return n
	}
	// axTrace is the trace axis's index in axes (it collapses for async
	// algorithms below, like the always-last shards axis).
	const axTrace = 3
	axes := []axis{
		{oneOrLen(len(g.Nodes)), func(s *scenario.Spec, i int) {
			if len(g.Nodes) > 0 {
				s.Nodes = g.Nodes[i]
			}
		}, func(s *scenario.Spec, i int) string {
			if len(g.Nodes) == 0 {
				return ""
			}
			return "n" + strconv.Itoa(g.Nodes[i])
		}},
		{oneOrLen(len(g.Rounds)), func(s *scenario.Spec, i int) {
			if len(g.Rounds) > 0 {
				s.Rounds = g.Rounds[i]
			}
		}, func(s *scenario.Spec, i int) string {
			if len(g.Rounds) == 0 {
				return ""
			}
			return "r" + strconv.Itoa(g.Rounds[i])
		}},
		{oneOrLen(len(g.Bandwidth)), func(s *scenario.Spec, i int) {
			if len(g.Bandwidth) > 0 {
				s.Bandwidth = g.Bandwidth[i].BandwidthSpec
				curBW = g.Bandwidth[i].label()
			}
		}, func(s *scenario.Spec, i int) string {
			if len(g.Bandwidth) == 0 {
				return ""
			}
			return g.Bandwidth[i].label()
		}},
		{oneOrLen(len(g.Traces)), func(s *scenario.Spec, i int) {
			if len(g.Traces) == 0 || scenario.AsyncAlgo(s.Algo) {
				return
			}
			e := &g.Traces[i]
			curTrace = e.label()
			if e.File == "" {
				// The static-network control cell: no replay at all.
				s.Trace = nil
				return
			}
			ts := e.TraceSpec
			if s.Algo != "saps" {
				// Membership events only drive the SAPS family; every other
				// algorithm replays the bandwidth multipliers only. (The
				// algo axis applies before this closure runs, so s.Algo is
				// the cell's final algorithm.)
				ts.Events = false
			}
			s.Trace = &ts
		}, func(s *scenario.Spec, i int) string {
			if len(g.Traces) == 0 || scenario.AsyncAlgo(s.Algo) {
				return ""
			}
			return g.Traces[i].label()
		}},
		{oneOrLen(len(g.Partition)), func(s *scenario.Spec, i int) {
			if len(g.Partition) == 0 {
				return
			}
			e := &g.Partition[i]
			curPart = e.label()
			if e.Kind == "iid" {
				// The uniform-split control cell: no partition block.
				s.Partition = nil
				return
			}
			ps := e.PartitionSpec
			s.Partition = &ps
		}, func(s *scenario.Spec, i int) string {
			if len(g.Partition) == 0 {
				return ""
			}
			return g.Partition[i].label()
		}},
		{oneOrLen(len(g.Seeds)), func(s *scenario.Spec, i int) {
			if len(g.Seeds) > 0 {
				s.Seed = g.Seeds[i]
			}
		}, func(s *scenario.Spec, i int) string {
			if len(g.Seeds) == 0 {
				return ""
			}
			return "s" + strconv.FormatUint(g.Seeds[i], 10)
		}},
		{oneOrLen(len(g.Shards)), func(s *scenario.Spec, i int) {
			// Async cells run unsharded on the event-driven engine, so the
			// shards axis never touches them (its length collapses to one
			// for async algorithms below).
			if len(g.Shards) > 0 && !scenario.AsyncAlgo(s.Algo) {
				s.Shards = g.Shards[i]
			}
		}, func(s *scenario.Spec, i int) string {
			if len(g.Shards) == 0 || scenario.AsyncAlgo(s.Algo) {
				return ""
			}
			return "sh" + strconv.Itoa(g.Shards[i])
		}},
	}
	var cells []Cell
	ids := map[string]int{}
	for _, algo := range algos {
		algoAxes := axes
		if scenario.AsyncAlgo(algo) {
			// The shards axis (always last) collapses for asynchronous
			// algorithms: every shard count would yield the identical
			// unsharded cell. So does the trace axis (index axTrace):
			// async runs use a static bandwidth environment, so every
			// trace entry would yield the identical untraced cell.
			algoAxes = append([]axis(nil), axes...)
			algoAxes[len(algoAxes)-1].n = 1
			algoAxes[axTrace].n = 1
		}
		comps := g.Compression
		if len(comps) == 0 || !hasCompressionKnob(algo) {
			// Axis absent, or the algorithm has no ratio knob: a single
			// cell with the base parameters (the axis collapses).
			comps = []float64{0}
		}
		for _, comp := range comps {
			// The fixed-order cartesian product over the remaining axes:
			// nodes › rounds › bandwidth › trace › partition › seed ›
			// shards. Iterate a mixed-radix counter so the nesting order is
			// explicit and stable.
			total := 1
			for _, a := range algoAxes {
				total *= a.n
			}
			for k := 0; k < total; k++ {
				idx := make([]int, len(algoAxes))
				rem := k
				for a := len(algoAxes) - 1; a >= 0; a-- {
					idx[a] = rem % algoAxes[a].n
					rem /= algoAxes[a].n
				}
				s := base.Clone()
				s.Algo = algo
				if algo != "saps" {
					// The saps-only blocks do not transfer to other
					// algorithms; drop them instead of failing the cell.
					s.Compression = 0
					s.Gossip = nil
					s.Churn = nil
					s.Faults = nil
					s.RecordTrace = false
					if s.Trace != nil {
						// The bandwidth multipliers replay for every
						// algorithm; membership events are saps-only.
						s.Trace.Events = false
					}
				}
				if !scenario.AsyncAlgo(algo) {
					// The async block does not transfer to synchronous
					// algorithms; asynchronous cells instead require the
					// base to carry one (Validate names the cell if not).
					s.Async = nil
				} else {
					// Async runs use a static bandwidth environment, so a
					// base trace block does not transfer either.
					s.Trace = nil
				}
				var parts []string
				if len(g.Algo) > 0 {
					parts = append(parts, algo)
				}
				// Apply nodes/rounds/bandwidth before compression so the
				// ratio lands on the final algorithm/knob combination.
				curBW, curTrace, curPart = "", "", ""
				for a, ax := range algoAxes {
					ax.apply(s, idx[a])
				}
				cell := Cell{Spec: s, Bandwidth: curBW, Trace: curTrace, Partition: curPart}
				if comp > 0 {
					applyCompression(s, comp)
					cell.Compression = comp
				}
				for a, ax := range algoAxes {
					if p := ax.part(s, idx[a]); p != "" {
						parts = append(parts, p)
					}
				}
				if comp > 0 {
					parts = append(parts, "c"+compact(comp))
				}
				id := strings.Join(parts, "_")
				if id == "" {
					// Every swept axis collapsed to the base value (e.g. a
					// compression-only grid over a knobless algorithm).
					id = "base"
				}
				if prev, dup := ids[id]; dup {
					return nil, fmt.Errorf("campaign %s: cells %d and %d share id %q (duplicate axis values?)",
						c.Name, prev, len(cells), id)
				}
				ids[id] = len(cells)
				s.Name = id
				if err := s.Validate(); err != nil {
					return nil, fmt.Errorf("campaign %s: cell %s: %w", c.Name, id, err)
				}
				canon, err := s.Canonical()
				if err != nil {
					return nil, fmt.Errorf("campaign %s: cell %s: %w", c.Name, id, err)
				}
				sum := sha256.Sum256(canon)
				cell.Index = len(cells)
				cell.ID = id
				cell.SHA = hex.EncodeToString(sum[:8])
				cells = append(cells, cell)
			}
		}
	}
	return cells, nil
}
