package engine

import (
	"time"

	"sapspsgd/internal/obs"
)

// The timed codec wrappers below are the engine's only per-call codec
// instrumentation points: every pattern (blocking and phased) funnels its
// Encode/Decode/DecodeInto calls through them. With observability off
// (the default) each wrapper costs one atomic pointer load and one nil
// check; enabled, it adds two monotonic clock reads and a histogram
// observation — atomics only, no allocation, nothing the codec's own
// determinism can see.

// encodeTimed runs c.Encode, observing the call latency in the global
// engine metrics when enabled.
func encodeTimed(c Codec, ctx RoundContext, out []float64) ([]float64, error) {
	em := obs.Current().EngineM()
	if em.CodecEncodeSeconds == nil {
		return c.Encode(ctx, out)
	}
	start := time.Now()
	words, err := c.Encode(ctx, out)
	em.CodecEncodeSeconds.Observe(time.Since(start).Seconds())
	return words, err
}

// decodeTimed runs c.Decode, observing the call latency in the global
// engine metrics when enabled.
func decodeTimed(c Codec, ctx RoundContext, words []float64) ([]float64, error) {
	em := obs.Current().EngineM()
	if em.CodecDecodeSeconds == nil {
		return c.Decode(ctx, words)
	}
	start := time.Now()
	vals, err := c.Decode(ctx, words)
	em.CodecDecodeSeconds.Observe(time.Since(start).Seconds())
	return vals, err
}

// decodeIntoTimed runs d.DecodeInto, observing the call latency in the
// global engine metrics when enabled.
func decodeIntoTimed(d DecoderInto, buf []float64, ctx RoundContext, words []float64) ([]float64, error) {
	em := obs.Current().EngineM()
	if em.CodecDecodeSeconds == nil {
		return d.DecodeInto(buf, ctx, words)
	}
	start := time.Now()
	out, err := d.DecodeInto(buf, ctx, words)
	em.CodecDecodeSeconds.Observe(time.Since(start).Seconds())
	return out, err
}
