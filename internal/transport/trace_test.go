// Trace-replay transport tests: the TCP deployment replaying a fleet trace
// (bandwidth multipliers + scripted membership), composed with a scheduled
// crash/rejoin, must reproduce the in-process SAPSTrace run bit for bit.
// This is the sim-vs-TCP half of the tentpole's determinism property (the
// shard-sweep half lives in internal/scenario); it runs under the race
// detector in CI.
package transport

import (
	"errors"
	"fmt"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"

	"sapspsgd/internal/algos"
	"sapspsgd/internal/core"
	"sapspsgd/internal/engine"
	"sapspsgd/internal/fleettrace"
	"sapspsgd/internal/gossip"
	"sapspsgd/internal/netsim"
	"sapspsgd/internal/nn"
	"sapspsgd/internal/rng"
)

// traceCSV scripts a 4-node, 8-round day: per-node bandwidth multipliers
// plus one scripted absence (node 2 away for rounds [2, 5)).
const traceCSV = `round,node,bw,event
0,0,1.0,
0,1,0.8,
0,2,1.2,
0,3,0.6,
2,2,,leave
3,0,0.5,
4,1,1.4,
5,2,1.0,join
6,3,1.1,
`

// traceReplay parses the test trace for an n-node fleet.
func traceReplay(t *testing.T, n int) *fleettrace.Replay {
	t.Helper()
	tr, err := fleettrace.Parse([]byte(traceCSV))
	if err != nil {
		t.Fatal(err)
	}
	rp, err := fleettrace.NewReplay(tr, n, fleettrace.InterpHold)
	if err != nil {
		t.Fatal(err)
	}
	return rp
}

// sapsTraceReference runs the spec fully in-process under the replayed
// membership and multipliers (plus the fault schedule) and returns the
// rank-0 model and per-round traffic totals — the same composition the
// scenario layer's roundEnv performs.
func sapsTraceReference(t *testing.T, spec TaskSpec, n int, rp *fleettrace.Replay, sched algos.FaultSchedule) ([]float64, []int64) {
	t.Helper()
	shards, _ := spec.BuildShards(n)
	fc := algos.FleetConfig{
		N: n,
		Factory: func() *nn.Model {
			m, err := spec.BuildModel()
			if err != nil {
				t.Fatal(err)
			}
			return m
		},
		Shards: shards,
		LR:     spec.LR,
		Batch:  spec.Batch,
		Seed:   spec.Seed,
	}
	cfg := core.Config{
		Workers:     n,
		Compression: spec.Compression,
		LR:          spec.LR,
		Batch:       spec.Batch,
		LocalSteps:  spec.LocalSteps,
		Gossip:      gossip.Config{BThres: 0, TThres: 10},
		Seed:        spec.Seed,
	}
	base := netsim.RandomUniform(n, 1, 5, rng.New(2))
	scaler := netsim.NewNodeScaledBandwidth(base)
	mult := rp.Multipliers(0, nil)
	alg := algos.NewSAPSTrace(fc, scaler.Apply(mult), cfg, rp, &sched)
	defer alg.Close()
	led := &engine.CountingLedger{}
	for r := 0; r < spec.Rounds; r++ {
		if r > 0 {
			mult = rp.Multipliers(r, mult)
			scaler.Apply(mult)
		}
		alg.Step(r, led)
	}
	return alg.Models()[0].FlatParams(nil), led.RoundBytes()
}

// TestTraceReplayBitIdenticalSimVsTCP is the backend-equivalence half of the
// trace determinism property: real worker processes over TCP, replaying the
// scripted day (node 2 absent for rounds [2,5), multipliers rescaling the
// environment every boundary) composed with a scheduled kill+rejoin of rank
// 1, must produce the identical final model and per-round ledger as the
// uninterrupted in-process SAPSTrace run of the same scenario.
func TestTraceReplayBitIdenticalSimVsTCP(t *testing.T) {
	const n, rounds = 4, 8
	spec := faultSpec(rounds)
	rp := traceReplay(t, n)
	sched := algos.FaultSchedule{
		N:      n,
		Seed:   spec.Seed,
		Events: []algos.FaultEvent{{Rank: 1, Round: 3, RejoinAfter: 2}},
	}
	wantParams, wantBytes := sapsTraceReference(t, spec, n, rp, sched)

	led := &engine.CountingLedger{}
	srv := &CoordinatorServer{
		N: n, Task: spec,
		BW:           netsim.RandomUniform(n, 1, 5, rng.New(2)),
		Gossip:       gossip.Config{BThres: 0, TThres: 10},
		Ledger:       led,
		Faults:       &sched,
		Replay:       rp,
		ReplayEvents: true,
		RejoinWait:   30 * time.Second,
		Logf:         t.Logf,
	}
	addr, err := srv.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}

	dir := t.TempDir()
	var wg sync.WaitGroup
	errs := make([]error, n)
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			path := filepath.Join(dir, fmt.Sprintf("worker-%d.snap", i))
			wc := &WorkerClient{SnapshotPath: path}
			_, err := wc.Run(addr, "127.0.0.1:0")
			for errors.Is(err, ErrCrashed) {
				wc = &WorkerClient{SnapshotPath: path, Resume: true}
				_, err = wc.Run(addr, "127.0.0.1:0")
			}
			errs[i] = err
		}(i)
	}
	final, err := srv.Run()
	wg.Wait()
	if err != nil {
		t.Fatalf("coordinator: %v", err)
	}
	for i, e := range errs {
		if e != nil {
			t.Fatalf("worker %d: %v", i, e)
		}
	}

	if len(final) != len(wantParams) {
		t.Fatalf("collected %d params, want %d", len(final), len(wantParams))
	}
	for j := range final {
		if final[j] != wantParams[j] {
			t.Fatalf("param %d: tcp %v != in-proc %v", j, final[j], wantParams[j])
		}
	}
	got := led.RoundBytes()
	if len(got) != len(wantBytes) {
		t.Fatalf("%d rounds accounted, want %d", len(got), len(wantBytes))
	}
	for r := range got {
		if got[r] != wantBytes[r] {
			t.Fatalf("round %d: tcp %d bytes != in-proc %d", r, got[r], wantBytes[r])
		}
	}
}

// TestReplayValidation pins the coordinator's replay preconditions: events
// without a replay, a fleet-size mismatch, and membership events on a
// non-SAPS algorithm are all rejected before any worker registers.
func TestReplayValidation(t *testing.T) {
	spec := faultSpec(2)
	cases := []struct {
		name string
		mut  func(s *CoordinatorServer)
		want string
	}{
		{"events without replay", func(s *CoordinatorServer) {
			s.ReplayEvents = true
		}, "ReplayEvents without a Replay"},
		{"fleet-size mismatch", func(s *CoordinatorServer) {
			s.Replay = traceReplay(t, 6) // 6-node replay, 4-trainer task
		}, "trace replay over 6 nodes"},
		{"events on a baseline", func(s *CoordinatorServer) {
			s.Replay = traceReplay(t, 4)
			s.ReplayEvents = true
			s.Task.Algo = "psgd"
		}, "require algo saps"},
	}
	for _, tc := range cases {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			srv := &CoordinatorServer{N: 4, Task: spec, BW: netsim.RandomUniform(4, 1, 5, rng.New(2))}
			tc.mut(srv)
			if _, err := srv.Listen("127.0.0.1:0"); err != nil {
				t.Fatal(err)
			}
			_, err := srv.Run()
			if err == nil || !strings.Contains(err.Error(), tc.want) {
				t.Fatalf("err = %v, want %q", err, tc.want)
			}
		})
	}
}
