// Fault-tolerance tests: the TCP deployment under real process kills must
// reproduce the in-process engine's fault simulation bit for bit (scheduled
// crash + rejoin from snapshot), and must survive unscheduled worker losses
// by aborting, rolling back, and re-planning the round. These run under the
// race detector in CI (the transport package is in the race matrix).
package transport

import (
	"errors"
	"fmt"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"

	"sapspsgd/internal/algos"
	"sapspsgd/internal/core"
	"sapspsgd/internal/engine"
	"sapspsgd/internal/gossip"
	"sapspsgd/internal/netsim"
	"sapspsgd/internal/nn"
	"sapspsgd/internal/rng"
)

// faultSpec is the shared tiny SAPS workload for the fault tests.
func faultSpec(rounds int) TaskSpec {
	return TaskSpec{
		Arch: "mlp", C: 1, H: 8, W: 8, Classes: 4, Hidden: []int{10},
		Samples: 160, DataSeed: 5,
		LR: 0.1, Batch: 8, Compression: 4, LocalSteps: 1,
		Rounds: rounds, Seed: 3,
	}
}

// sapsFaultsReference runs the same spec fully in-process under the fault
// schedule (scheduled-dead workers excluded from planning) and returns the
// rank-0 model and per-round traffic totals.
func sapsFaultsReference(t *testing.T, spec TaskSpec, n int, sched algos.FaultSchedule) ([]float64, []int64) {
	t.Helper()
	shards, _ := spec.BuildShards(n)
	fc := algos.FleetConfig{
		N: n,
		Factory: func() *nn.Model {
			m, err := spec.BuildModel()
			if err != nil {
				t.Fatal(err)
			}
			return m
		},
		Shards: shards,
		LR:     spec.LR,
		Batch:  spec.Batch,
		Seed:   spec.Seed,
	}
	cfg := core.Config{
		Workers:     n,
		Compression: spec.Compression,
		LR:          spec.LR,
		Batch:       spec.Batch,
		LocalSteps:  spec.LocalSteps,
		Gossip:      gossip.Config{BThres: 0, TThres: 10},
		Seed:        spec.Seed,
	}
	bw := netsim.RandomUniform(n, 1, 5, rng.New(2))
	alg := algos.NewSAPSFaults(fc, bw, cfg, sched)
	defer alg.Close()
	led := &engine.CountingLedger{}
	for r := 0; r < spec.Rounds; r++ {
		alg.Step(r, led)
	}
	return alg.Models()[0].FlatParams(nil), led.RoundBytes()
}

// TestKillAndRejoinBitIdentical is the acceptance contract of the
// fault-tolerant TCP runtime: a real worker process is killed at a scheduled
// round boundary (abrupt teardown after its last committed snapshot), the
// fleet trains on without it, a fresh process resumes from the snapshot and
// rejoins at the scheduled round — and the final model is bit-identical,
// with a byte-identical per-round ledger, to the uninterrupted in-process
// run of the same fault scenario.
func TestKillAndRejoinBitIdentical(t *testing.T) {
	const n, rounds = 4, 8
	spec := faultSpec(rounds)
	sched := algos.FaultSchedule{
		N:      n,
		Seed:   spec.Seed,
		Events: []algos.FaultEvent{{Rank: 2, Round: 3, RejoinAfter: 2}},
	}
	wantParams, wantBytes := sapsFaultsReference(t, spec, n, sched)

	led := &engine.CountingLedger{}
	srv := &CoordinatorServer{
		N: n, Task: spec,
		BW:         netsim.RandomUniform(n, 1, 5, rng.New(2)),
		Gossip:     gossip.Config{BThres: 0, TThres: 10},
		Ledger:     led,
		Faults:     &sched,
		RejoinWait: 30 * time.Second,
		Logf:       t.Logf,
	}
	addr, err := srv.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}

	dir := t.TempDir()
	var wg sync.WaitGroup
	errs := make([]error, n)
	crashes := make([]int, n)
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			path := filepath.Join(dir, fmt.Sprintf("worker-%d.snap", i))
			wc := &WorkerClient{SnapshotPath: path}
			_, err := wc.Run(addr, "127.0.0.1:0")
			// A fault-injected kill is not a failure: restart with -resume,
			// exactly as an operator (or a supervisor) would.
			for errors.Is(err, ErrCrashed) {
				crashes[i]++
				wc = &WorkerClient{SnapshotPath: path, Resume: true}
				_, err = wc.Run(addr, "127.0.0.1:0")
			}
			errs[i] = err
		}(i)
	}
	final, err := srv.Run()
	wg.Wait()
	if err != nil {
		t.Fatalf("coordinator: %v", err)
	}
	for i, e := range errs {
		if e != nil {
			t.Fatalf("worker %d: %v", i, e)
		}
	}
	totalCrashes := 0
	for _, c := range crashes {
		totalCrashes += c
	}
	if totalCrashes != 1 {
		t.Fatalf("%d workers crashed, want exactly 1 (the scheduled kill)", totalCrashes)
	}

	if len(final) != len(wantParams) {
		t.Fatalf("collected %d params, want %d", len(final), len(wantParams))
	}
	for j := range final {
		if final[j] != wantParams[j] {
			t.Fatalf("param %d: tcp %v != in-proc %v", j, final[j], wantParams[j])
		}
	}
	got := led.RoundBytes()
	if len(got) != len(wantBytes) {
		t.Fatalf("%d rounds accounted, want %d", len(got), len(wantBytes))
	}
	for r := range got {
		if got[r] != wantBytes[r] {
			t.Fatalf("round %d: tcp %d bytes != in-proc %d", r, got[r], wantBytes[r])
		}
	}
}

// TestUnscheduledCrashReplans exercises the detection path: a worker dies
// without warning (no fault schedule, the coordinator is not told), the
// affected round aborts, every survivor rolls back to its round-boundary
// snapshot, and the coordinator re-plans the round over the remaining fleet.
// The run must complete all rounds with the surviving workers.
func TestUnscheduledCrashReplans(t *testing.T) {
	const n, rounds, dieAt = 4, 6, 3
	spec := faultSpec(rounds)

	led := &engine.CountingLedger{}
	srv := &CoordinatorServer{
		N: n, Task: spec,
		BW:     netsim.RandomUniform(n, 1, 5, rng.New(2)),
		Gossip: gossip.Config{BThres: 0, TThres: 10},
		Ledger: led,
		Logf:   t.Logf,
	}
	addr, err := srv.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}

	var wg sync.WaitGroup
	errs := make([]error, n)
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			wc := &WorkerClient{}
			if i == 0 {
				// This client (whatever rank it registers as) tears down
				// abruptly upon receiving the round-3 control message.
				die := dieAt
				wc.dieAtRound = &die
			}
			_, errs[i] = wc.Run(addr, "127.0.0.1:0")
		}(i)
	}
	final, err := srv.Run()
	wg.Wait()
	if err != nil {
		t.Fatalf("coordinator: %v", err)
	}
	for i, e := range errs[1:] {
		if e != nil {
			t.Fatalf("surviving worker %d: %v", i+1, e)
		}
	}
	if !errors.Is(errs[0], ErrCrashed) {
		t.Fatalf("killed worker returned %v, want ErrCrashed", errs[0])
	}
	if len(final) == 0 {
		t.Fatal("no final model collected")
	}
	if got := led.Rounds(); got != rounds {
		t.Fatalf("%d rounds charged, want %d (aborted attempts must not be charged)", got, rounds)
	}
}

// TestRejoinRejectsStaleSnapshot covers the integrity check on both sides:
// a worker resuming from a tampered (wrong-round) snapshot is rejected with
// an actionable reason, and the coordinator times out waiting for the
// scheduled rejoiner rather than silently diverging.
func TestRejoinRejectsStaleSnapshot(t *testing.T) {
	const n, rounds = 4, 8
	spec := faultSpec(rounds)
	sched := algos.FaultSchedule{
		N:      n,
		Seed:   spec.Seed,
		Events: []algos.FaultEvent{{Rank: 1, Round: 2, RejoinAfter: 2}},
	}

	led := &engine.CountingLedger{}
	srv := &CoordinatorServer{
		N: n, Task: spec,
		BW:         netsim.RandomUniform(n, 1, 5, rng.New(2)),
		Gossip:     gossip.Config{BThres: 0, TThres: 10},
		Ledger:     led,
		Faults:     &sched,
		RejoinWait: 2 * time.Second,
	}
	addr, err := srv.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}

	dir := t.TempDir()
	var wg sync.WaitGroup
	var rejoinErr error
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			path := filepath.Join(dir, fmt.Sprintf("worker-%d.snap", i))
			wc := &WorkerClient{SnapshotPath: path}
			_, err := wc.Run(addr, "127.0.0.1:0")
			if !errors.Is(err, ErrCrashed) {
				return // survivors end with the coordinator's teardown
			}
			// Tamper: pretend the snapshot is one round older than it is.
			snap, err := LoadWorkerSnapshot(path)
			if err != nil {
				rejoinErr = err
				return
			}
			snap.NextRound--
			if err := SaveWorkerSnapshot(path, snap); err != nil {
				rejoinErr = err
				return
			}
			wc = &WorkerClient{SnapshotPath: path, Resume: true}
			_, rejoinErr = wc.Run(addr, "127.0.0.1:0")
		}(i)
	}
	_, err = srv.Run()
	wg.Wait()
	if err == nil || !strings.Contains(err.Error(), "did not rejoin") {
		t.Fatalf("coordinator error %v, want rejoin timeout", err)
	}
	if rejoinErr == nil || !strings.Contains(rejoinErr.Error(), "rejoin rejected") {
		t.Fatalf("rejoin error %v, want rejection with reason", rejoinErr)
	}
	if !strings.Contains(rejoinErr.Error(), "died at round") {
		t.Fatalf("rejection reason %q lacks the round mismatch", rejoinErr)
	}
}
