package nn

import (
	"bytes"
	"testing"
)

func TestCheckpointRoundTrip(t *testing.T) {
	m := NewMLP(10, []int{8}, 3, 2)
	p := m.FlatParams(nil)
	for i := range p {
		p[i] = float64(i) * 0.01
	}
	m.SetFlatParams(p)

	var buf bytes.Buffer
	if err := m.Save(&buf); err != nil {
		t.Fatal(err)
	}
	restored := NewMLP(10, []int{8}, 3, 99) // different init seed
	if err := restored.Load(&buf); err != nil {
		t.Fatal(err)
	}
	got := restored.FlatParams(nil)
	for i := range p {
		if got[i] != p[i] {
			t.Fatalf("param %d differs after reload", i)
		}
	}
}

func TestCheckpointArchMismatch(t *testing.T) {
	m := NewMLP(10, []int{8}, 3, 2)
	var buf bytes.Buffer
	if err := m.Save(&buf); err != nil {
		t.Fatal(err)
	}
	other := NewMNISTCNN(Shape{C: 1, H: 8, W: 8}, 3, 0.25, 1)
	if err := other.Load(&buf); err == nil {
		t.Fatal("loading MLP checkpoint into CNN should fail")
	}
}

func TestCheckpointSizeMismatch(t *testing.T) {
	m := NewMLP(10, []int{8}, 3, 2)
	var buf bytes.Buffer
	if err := m.Save(&buf); err != nil {
		t.Fatal(err)
	}
	smaller := NewMLP(10, []int{4}, 3, 2)
	smaller.Name = m.Name // force the name check to pass
	if err := smaller.Load(&buf); err == nil {
		t.Fatal("size mismatch should fail")
	}
}

func TestCheckpointGarbageInput(t *testing.T) {
	m := NewMLP(4, nil, 2, 1)
	if err := m.Load(bytes.NewBufferString("not a gob stream")); err == nil {
		t.Fatal("garbage input should fail")
	}
}
