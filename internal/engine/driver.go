package engine

import (
	"time"

	"sapspsgd/internal/obs"
)

// Driver is Algorithm 1's round loop, backend- and algorithm-agnostic: plan
// the round (Algorithm 3 via the Planner), run it on every node through the
// Control barrier, then account the round's traffic in the Ledger — one
// bidirectional charge per communicating pair, sized by the wire bytes the
// nodes' codecs actually produced.
type Driver struct {
	Planner Planner
	Control Control
	// Metrics is the observability sink for round counters and timings.
	// The zero value is a fully disabled sink; constructors capture
	// obs.Current().EngineM() once so hot rounds never reload the global.
	Metrics obs.EngineMetrics
}

// Round executes round t against the ledger and returns its stats.
func (d *Driver) Round(t int, led Ledger) (RoundStats, error) {
	var start time.Time
	if d.Metrics.Enabled() {
		start = time.Now()
	}
	plan := d.Planner.Plan(t)
	rep, err := d.Control.RunRound(plan)
	if err != nil {
		return RoundStats{}, err
	}
	var total int64
	for _, p := range rep.Pairs {
		led.Exchange(p.I, p.J, p.IToJ, p.JToI)
		total += p.IToJ + p.JToI
	}
	secs := led.EndRound()
	d.Metrics.RoundsTotal.Inc()
	// The wire counter follows the repo's fleet-traffic convention
	// (Result.TotalBytes, BENCH.json): every payload counted at both its
	// sender and its receiver.
	d.Metrics.WireBytesTotal.Add(2 * total)
	d.Metrics.SimSecondsTotal.Add(secs)
	if d.Metrics.Enabled() {
		d.Metrics.RoundSeconds.Observe(time.Since(start).Seconds())
	}
	return RoundStats{
		Plan:        plan,
		PayloadLen:  rep.PayloadLen,
		Loss:        rep.MeanLoss,
		Bytes:       total,
		CommSeconds: secs,
	}, nil
}
