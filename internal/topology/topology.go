// Package topology provides the static communication topologies that
// decentralized SGD is classically run on — ring, 2-D torus, hypercube, and
// random regular expanders — together with their doubly stochastic gossip
// matrices and spectral properties. The paper's §II-C argues the ring is the
// best information spreader among ≤2-neighbor topologies and that choosing a
// maximum-bandwidth ring is NP-complete; this package makes those
// comparisons measurable (see the topology ablation in
// internal/experiments).
package topology

import (
	"fmt"

	"sapspsgd/internal/graph"
	"sapspsgd/internal/netsim"
	"sapspsgd/internal/rng"
	"sapspsgd/internal/tensor"
)

// Topology is a named static undirected communication graph.
type Topology struct {
	Name string
	G    *graph.Graph
}

// Ring returns the cycle on n vertices.
func Ring(n int) Topology {
	g := graph.New(n)
	for i := 0; i < n; i++ {
		g.AddEdge(i, (i+1)%n)
	}
	return Topology{Name: fmt.Sprintf("ring-%d", n), G: g}
}

// Torus returns the rows×cols 2-D torus (each vertex has 4 neighbors;
// degenerate dimensions collapse gracefully).
func Torus(rows, cols int) Topology {
	n := rows * cols
	g := graph.New(n)
	id := func(r, c int) int { return ((r+rows)%rows)*cols + (c+cols)%cols }
	for r := 0; r < rows; r++ {
		for c := 0; c < cols; c++ {
			g.AddEdge(id(r, c), id(r, c+1))
			g.AddEdge(id(r, c), id(r+1, c))
		}
	}
	return Topology{Name: fmt.Sprintf("torus-%dx%d", rows, cols), G: g}
}

// Hypercube returns the d-dimensional hypercube on 2^d vertices.
func Hypercube(d int) Topology {
	if d < 1 || d > 20 {
		panic(fmt.Sprintf("topology: hypercube dimension %d", d))
	}
	n := 1 << d
	g := graph.New(n)
	for v := 0; v < n; v++ {
		for b := 0; b < d; b++ {
			g.AddEdge(v, v^(1<<b))
		}
	}
	return Topology{Name: fmt.Sprintf("hypercube-%d", d), G: g}
}

// RandomRegular returns a random d-regular graph on n vertices via the
// pairing model with retries (n·d must be even). Random regular graphs are
// expanders with high probability — near-optimal mixing at constant degree.
func RandomRegular(n, d int, r *rng.Source) Topology {
	if d < 1 || d >= n || n*d%2 != 0 {
		panic(fmt.Sprintf("topology: invalid regular graph n=%d d=%d", n, d))
	}
	for attempt := 0; attempt < 200; attempt++ {
		g := tryPairing(n, d, r)
		if g != nil && g.IsConnected() {
			return Topology{Name: fmt.Sprintf("random-%d-regular-%d", d, n), G: g}
		}
	}
	panic("topology: pairing model failed to produce a simple connected graph")
}

// tryPairing samples one pairing-model configuration; returns nil if it has
// self-loops or multi-edges.
func tryPairing(n, d int, r *rng.Source) *graph.Graph {
	stubs := make([]int, 0, n*d)
	for v := 0; v < n; v++ {
		for k := 0; k < d; k++ {
			stubs = append(stubs, v)
		}
	}
	r.Shuffle(len(stubs), func(i, j int) { stubs[i], stubs[j] = stubs[j], stubs[i] })
	g := graph.New(n)
	for i := 0; i < len(stubs); i += 2 {
		u, v := stubs[i], stubs[i+1]
		if u == v || g.HasEdge(u, v) {
			return nil
		}
		g.AddEdge(u, v)
	}
	return g
}

// MetropolisW builds the Metropolis–Hastings doubly stochastic gossip
// matrix of a topology: W_ij = 1/(1+max(d_i,d_j)) for edges, and the
// diagonal absorbs the remainder. Symmetric and doubly stochastic for any
// graph.
func MetropolisW(t Topology) *tensor.Matrix {
	n := t.G.N
	w := tensor.NewMatrix(n, n)
	deg := make([]int, n)
	for v := 0; v < n; v++ {
		deg[v] = len(t.G.Neighbors(v))
	}
	for v := 0; v < n; v++ {
		rowSum := 0.0
		for _, u := range t.G.Neighbors(v) {
			dv, du := deg[v], deg[u]
			m := dv
			if du > m {
				m = du
			}
			val := 1 / float64(1+m)
			w.Set(v, u, val)
			rowSum += val
		}
		w.Set(v, v, 1-rowSum)
	}
	return w
}

// MeanLinkBandwidth returns the mean bandwidth over the topology's edges in
// the given environment — the per-round matched-bandwidth analogue for a
// static topology (every edge is used every round).
func MeanLinkBandwidth(t Topology, bw *netsim.Bandwidth) float64 {
	edges := t.G.Edges()
	if len(edges) == 0 {
		return 0
	}
	sum := 0.0
	for _, e := range edges {
		sum += bw.MBps(e[0], e[1])
	}
	return sum / float64(len(edges))
}

// PerWorkerTrafficPerRound returns the number of dense-model payloads a
// worker sends+receives per round on this topology: 2 × its degree (send to
// and receive from every neighbor).
func PerWorkerTrafficPerRound(t Topology, worker int) int {
	return 2 * len(t.G.Neighbors(worker))
}
