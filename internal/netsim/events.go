package netsim

import (
	"fmt"
	"io"
	"math"
	"strconv"
)

// This file is the event-driven core of the network simulator: a priority
// queue of virtual-time events with a *total* order, so any run that feeds
// the queue the same events drains them in exactly the same sequence no
// matter how the events were produced (goroutine interleaving, insertion
// order, GOMAXPROCS). The Ledger schedules transfer events on it each round
// and the engine's async driver runs its whole execution off it.

// EventKind discriminates the event types the simulator schedules.
type EventKind uint8

// The event kinds, in their tie-breaking order (an accident of the iota
// numbering, but pinned by the serialization format and the property tests:
// compute-done before transfer-start before transfer-complete at equal time
// and ranks).
const (
	// EventComputeDone marks a rank finishing one local compute block.
	EventComputeDone EventKind = iota
	// EventTransferStart marks a rank's NIC beginning a transfer.
	EventTransferStart
	// EventTransferComplete marks the transfer's payload fully delivered.
	EventTransferComplete
)

// String returns the kind's stable wire name.
func (k EventKind) String() string {
	switch k {
	case EventComputeDone:
		return "compute-done"
	case EventTransferStart:
		return "transfer-start"
	case EventTransferComplete:
		return "transfer-complete"
	}
	return fmt.Sprintf("kind(%d)", uint8(k))
}

// Event is one point in virtual time. Its identity — (Time, Kind, Rank,
// Peer, Round, Bytes) — doubles as its total-order sort key, so the drain
// order of a queue is a pure function of the event *set*, never of the
// insertion order. Nothing in an Event references wall-clock time or memory
// addresses; two processes that schedule the same virtual work produce
// byte-identical event streams.
type Event struct {
	// Time is the event's virtual time in seconds.
	Time float64
	// Kind is the event type.
	Kind EventKind
	// Rank is the primary endpoint: the computing rank, or the transfer's
	// charged endpoint.
	Rank int32
	// Peer is the other transfer endpoint, or -1 (no peer: compute events
	// and server-link transfers).
	Peer int32
	// Round is the synchronous round index, or (async driver) the
	// initiator's gossip-step index.
	Round int32
	// Bytes is the transfer's payload size (0 for compute events).
	Bytes int64
}

// eventLess is the total order: virtual time first, then the stable
// composite key (kind, rank, peer, round, bytes). Every field of the event
// participates, so distinct events never compare equal and the order cannot
// depend on how the events reached the queue.
func eventLess(a, b Event) bool {
	if a.Time != b.Time {
		return a.Time < b.Time
	}
	if a.Kind != b.Kind {
		return a.Kind < b.Kind
	}
	if a.Rank != b.Rank {
		return a.Rank < b.Rank
	}
	if a.Peer != b.Peer {
		return a.Peer < b.Peer
	}
	if a.Round != b.Round {
		return a.Round < b.Round
	}
	return a.Bytes < b.Bytes
}

// EventQueue is a binary min-heap of events under the total order above.
// The zero value is ready to use. Pop order is deterministic and
// insertion-order invariant; the heap retains its capacity across
// fill/drain cycles, so a ledger reusing one queue round after round stays
// allocation-free in steady state.
type EventQueue struct {
	h []Event
}

// Len returns the number of queued events.
func (q *EventQueue) Len() int { return len(q.h) }

// Push schedules an event.
func (q *EventQueue) Push(e Event) {
	q.h = append(q.h, e)
	i := len(q.h) - 1
	for i > 0 {
		parent := (i - 1) / 2
		if !eventLess(q.h[i], q.h[parent]) {
			break
		}
		q.h[i], q.h[parent] = q.h[parent], q.h[i]
		i = parent
	}
}

// Pop removes and returns the minimum event; ok is false on an empty queue.
func (q *EventQueue) Pop() (e Event, ok bool) {
	n := len(q.h)
	if n == 0 {
		return Event{}, false
	}
	e = q.h[0]
	q.h[0] = q.h[n-1]
	q.h = q.h[:n-1]
	n--
	i := 0
	for {
		l, r := 2*i+1, 2*i+2
		min := i
		if l < n && eventLess(q.h[l], q.h[min]) {
			min = l
		}
		if r < n && eventLess(q.h[r], q.h[min]) {
			min = r
		}
		if min == i {
			return e, true
		}
		q.h[i], q.h[min] = q.h[min], q.h[i]
		i = min
	}
}

// Reset empties the queue, keeping its capacity.
func (q *EventQueue) Reset() { q.h = q.h[:0] }

// EventLog accumulates drained events in pop order. Its serialized forms
// are deterministic: two runs that drain the same event sequence produce
// byte-identical logs, which is what the CI determinism gate compares.
type EventLog struct {
	// Events is the drained sequence, in virtual-time total order.
	Events []Event
}

// Append records one event.
func (l *EventLog) Append(e Event) { l.Events = append(l.Events, e) }

// Len returns the number of recorded events.
func (l *EventLog) Len() int { return len(l.Events) }

// AppendTo serializes the log onto buf in the exact-replay text form: one
// line per event, the virtual time as the hex IEEE-754 bit pattern (float
// formatting never rounds two distinct times onto one string). This is the
// byte-comparison artifact of the determinism gate.
func (l *EventLog) AppendTo(buf []byte) []byte {
	for _, e := range l.Events {
		buf = strconv.AppendUint(buf, math.Float64bits(e.Time), 16)
		buf = append(buf, ' ')
		buf = append(buf, e.Kind.String()...)
		buf = append(buf, ' ')
		buf = strconv.AppendInt(buf, int64(e.Rank), 10)
		buf = append(buf, ' ')
		buf = strconv.AppendInt(buf, int64(e.Peer), 10)
		buf = append(buf, ' ')
		buf = strconv.AppendInt(buf, int64(e.Round), 10)
		buf = append(buf, ' ')
		buf = strconv.AppendInt(buf, e.Bytes, 10)
		buf = append(buf, '\n')
	}
	return buf
}

// Bytes returns the log's deterministic serialized form (see AppendTo).
func (l *EventLog) Bytes() []byte { return l.AppendTo(nil) }

// WriteCSV renders the log as a human-readable CSV: readable decimal times
// (9 fractional digits) alongside the exact bit pattern, for the uploaded
// event-trace artifact.
func (l *EventLog) WriteCSV(w io.Writer) error {
	if _, err := io.WriteString(w, "time_sec,time_bits,kind,rank,peer,round,bytes\n"); err != nil {
		return err
	}
	buf := make([]byte, 0, 96)
	for _, e := range l.Events {
		buf = buf[:0]
		buf = strconv.AppendFloat(buf, e.Time, 'f', 9, 64)
		buf = append(buf, ',')
		buf = strconv.AppendUint(buf, math.Float64bits(e.Time), 16)
		buf = append(buf, ',')
		buf = append(buf, e.Kind.String()...)
		buf = append(buf, ',')
		buf = strconv.AppendInt(buf, int64(e.Rank), 10)
		buf = append(buf, ',')
		buf = strconv.AppendInt(buf, int64(e.Peer), 10)
		buf = append(buf, ',')
		buf = strconv.AppendInt(buf, int64(e.Round), 10)
		buf = append(buf, ',')
		buf = strconv.AppendInt(buf, e.Bytes, 10)
		buf = append(buf, '\n')
		if _, err := w.Write(buf); err != nil {
			return err
		}
	}
	return nil
}
