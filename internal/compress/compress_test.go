package compress

import (
	"math"
	"sort"
	"testing"
	"testing/quick"

	"sapspsgd/internal/rng"
)

func TestMaskAgreementAndDensity(t *testing.T) {
	const n = 100000
	a := Mask(7, 3, n, 100)
	b := Mask(7, 3, n, 100)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("masks disagree at %d", i)
		}
	}
	k := CountOnes(a)
	want := float64(n) / 100
	if math.Abs(float64(k)-want) > 6*math.Sqrt(want) {
		t.Fatalf("mask ones = %d, want ~%v", k, want)
	}
}

func TestMaskBadRatioPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for c < 1")
		}
	}()
	Mask(1, 1, 10, 0.5)
}

func TestExtractScatterRoundTrip(t *testing.T) {
	f := func(seed uint64) bool {
		r := rng.New(seed)
		n := 1 + r.Intn(200)
		x := make([]float64, n)
		mask := make([]bool, n)
		for i := range x {
			x[i] = r.NormFloat64()
			mask[i] = r.Bernoulli(0.3)
		}
		vals := Extract(x, mask)
		if len(vals) != CountOnes(mask) {
			return false
		}
		dst := make([]float64, n)
		consumed := Scatter(dst, mask, vals)
		if consumed != len(vals) {
			return false
		}
		for i := range x {
			if mask[i] && dst[i] != x[i] {
				return false
			}
			if !mask[i] && dst[i] != 0 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestWireSizes(t *testing.T) {
	if DenseBytes(1000) != 4000 {
		t.Fatal("DenseBytes")
	}
	if MaskedBytes(10) != 40 {
		t.Fatal("MaskedBytes")
	}
	if SparseBytes(10) != 80 {
		t.Fatal("SparseBytes")
	}
	s := SparseVec{N: 100, Idx: make([]int32, 5), Val: make([]float64, 5)}
	if s.WireBytes() != 40 {
		t.Fatal("SparseVec.WireBytes")
	}
}

func TestTopKExact(t *testing.T) {
	x := []float64{0.1, -5, 3, 0, -0.2, 4}
	s := TopK(x, 3)
	if len(s.Idx) != 3 {
		t.Fatalf("len = %d", len(s.Idx))
	}
	got := map[int32]float64{}
	for i, idx := range s.Idx {
		got[idx] = s.Val[i]
	}
	want := map[int32]float64{1: -5, 2: 3, 5: 4}
	for idx, v := range want {
		if got[idx] != v {
			t.Fatalf("TopK = %v/%v, want %v", s.Idx, s.Val, want)
		}
	}
}

func TestTopKEdgeCases(t *testing.T) {
	if s := TopK([]float64{1, 2}, 0); len(s.Idx) != 0 || s.N != 2 {
		t.Fatal("k=0")
	}
	if s := TopK([]float64{1, 2}, 5); len(s.Idx) != 2 {
		t.Fatal("k>n should clamp")
	}
	if s := TopK(nil, 3); s.N != 0 || len(s.Idx) != 0 {
		t.Fatal("empty input")
	}
}

func TestTopKTies(t *testing.T) {
	x := []float64{1, -1, 1, -1, 1}
	s := TopK(x, 3)
	if len(s.Idx) != 3 {
		t.Fatalf("ties: got %d entries, want exactly 3", len(s.Idx))
	}
}

func TestTopKMatchesSort(t *testing.T) {
	f := func(seed uint64) bool {
		r := rng.New(seed)
		n := 1 + r.Intn(500)
		k := r.Intn(n + 1)
		x := make([]float64, n)
		for i := range x {
			x[i] = r.NormFloat64()
		}
		s := TopK(x, k)
		if len(s.Idx) != k {
			return false
		}
		// Indices ascending and values match x.
		for i, idx := range s.Idx {
			if i > 0 && s.Idx[i-1] >= idx {
				return false
			}
			if s.Val[i] != x[idx] {
				return false
			}
		}
		// The selected magnitudes must be the k largest.
		mags := make([]float64, n)
		for i, v := range x {
			mags[i] = math.Abs(v)
		}
		sort.Sort(sort.Reverse(sort.Float64Slice(mags)))
		minSelected := math.Inf(1)
		for _, v := range s.Val {
			if a := math.Abs(v); a < minSelected {
				minSelected = a
			}
		}
		if k > 0 && minSelected < mags[k-1]-1e-15 {
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestErrorFeedbackConservation(t *testing.T) {
	// Error feedback invariant: transmitted + residual == input + previous
	// residual, coordinate by coordinate.
	const n, k = 100, 10
	ef := NewErrorFeedback(n)
	r := rng.New(3)
	prevResidual := make([]float64, n)
	for round := 0; round < 20; round++ {
		x := make([]float64, n)
		for i := range x {
			x[i] = r.NormFloat64()
		}
		s := ef.CompressTopK(x, k)
		dense := s.Dense()
		for i := 0; i < n; i++ {
			sum := dense[i] + ef.Residual()[i]
			want := x[i] + prevResidual[i]
			if math.Abs(sum-want) > 1e-12 {
				t.Fatalf("round %d coord %d: sent+residual=%v, want %v", round, i, sum, want)
			}
		}
		copy(prevResidual, ef.Residual())
	}
}

func TestErrorFeedbackEventuallySendsEverything(t *testing.T) {
	// A constant input must eventually be transmitted in full: residuals grow
	// until every coordinate wins a top-k slot.
	const n, k = 20, 2
	ef := NewErrorFeedback(n)
	x := make([]float64, n)
	for i := range x {
		x[i] = 1 + float64(i)*0.01
	}
	sent := make([]float64, n)
	for round := 0; round < 50; round++ {
		s := ef.CompressTopK(x, k)
		s.AddTo(sent, 1)
	}
	for i := range sent {
		if sent[i] == 0 {
			t.Fatalf("coordinate %d was never transmitted in 50 rounds", i)
		}
	}
}

func TestRandomKProperties(t *testing.T) {
	f := func(seed uint64) bool {
		r := rng.New(seed)
		n := 1 + r.Intn(300)
		k := r.Intn(n + 1)
		x := make([]float64, n)
		for i := range x {
			x[i] = r.NormFloat64()
		}
		s := RandomK(x, k, r)
		if len(s.Idx) != k {
			return false
		}
		seen := map[int32]bool{}
		for i, idx := range s.Idx {
			if idx < 0 || int(idx) >= n || seen[idx] {
				return false
			}
			if i > 0 && s.Idx[i-1] >= idx {
				return false
			}
			seen[idx] = true
			if s.Val[i] != x[idx] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestRandomKCoverage(t *testing.T) {
	// Over many draws every coordinate should be selected sometimes.
	const n, k = 30, 3
	r := rng.New(5)
	x := make([]float64, n)
	counts := make([]int, n)
	for trial := 0; trial < 2000; trial++ {
		s := RandomK(x, k, r)
		for _, idx := range s.Idx {
			counts[idx]++
		}
	}
	for i, c := range counts {
		if c == 0 {
			t.Fatalf("coordinate %d never sampled", i)
		}
	}
}

func TestSparseVecDenseAddTo(t *testing.T) {
	s := SparseVec{N: 5, Idx: []int32{1, 3}, Val: []float64{2, -4}}
	d := s.Dense()
	want := []float64{0, 2, 0, -4, 0}
	for i := range want {
		if d[i] != want[i] {
			t.Fatalf("Dense = %v", d)
		}
	}
	dst := []float64{1, 1, 1, 1, 1}
	s.AddTo(dst, 0.5)
	want2 := []float64{1, 2, 1, -1, 1}
	for i := range want2 {
		if dst[i] != want2[i] {
			t.Fatalf("AddTo = %v", dst)
		}
	}
}

func BenchmarkTopK1M(b *testing.B) {
	r := rng.New(1)
	x := make([]float64, 1<<20)
	for i := range x {
		x[i] = r.NormFloat64()
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		TopK(x, len(x)/1000)
	}
}

func BenchmarkExtractMasked(b *testing.B) {
	r := rng.New(2)
	n := 1 << 20
	x := make([]float64, n)
	mask := make([]bool, n)
	r.Mask(mask, 0.01)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Extract(x, mask)
	}
}
