package transport

import (
	"sync"
	"testing"

	"sapspsgd/internal/algos"
	"sapspsgd/internal/engine"
	"sapspsgd/internal/netsim"
	"sapspsgd/internal/nn"
	"sapspsgd/internal/rng"
)

// algoSpec is the shared tiny workload for the per-algorithm TCP tests.
func algoSpec(algo string, rounds int) TaskSpec {
	return TaskSpec{
		Arch: "mlp", C: 1, H: 8, W: 8, Classes: 4,
		Hidden: []int{10}, Samples: 160, DataSeed: 5,
		LR: 0.1, Batch: 8, Compression: 4, LocalSteps: 1,
		Rounds: rounds, Seed: 3,
		Algo: algo, AlgoC: 8, QLevels: 4, Fraction: 0.5,
	}
}

// inProcReference runs the same recipe fully in-process and returns the
// reference global model and per-round traffic totals.
func inProcReference(t *testing.T, spec TaskSpec, n, rounds int) ([]float64, []int64) {
	t.Helper()
	shards, _ := spec.BuildShards(n)
	fc := algos.FleetConfig{
		N: n,
		Factory: func() *nn.Model {
			m, err := spec.BuildModel()
			if err != nil {
				t.Fatal(err)
			}
			return m
		},
		Shards: shards,
		LR:     spec.LR,
		Batch:  spec.Batch,
		Seed:   spec.Seed,
	}
	bw := netsim.RandomUniform(n, 1, 5, rng.New(2))
	var alg algos.Algorithm
	switch spec.AlgoName() {
	case "psgd":
		alg = algos.NewPSGD(fc)
	case "d-psgd":
		alg = algos.NewDPSGD(fc)
	case "topk-psgd":
		alg = algos.NewTopKPSGD(fc, spec.AlgoC)
	case "qsgd-psgd":
		alg = algos.NewQSGDPSGD(fc, spec.QLevels)
	case "dcd-psgd":
		alg = algos.NewDCDPSGD(fc, spec.AlgoC)
	case "ps-psgd":
		alg = algos.NewPSPSGD(fc, bw)
	case "fedavg":
		alg = algos.NewFedAvg(fc, bw, spec.Fraction, spec.LocalSteps)
	case "s-fedavg":
		alg = algos.NewSFedAvg(fc, bw, spec.Fraction, spec.LocalSteps, spec.AlgoC)
	default:
		t.Fatalf("no in-proc reference for %q", spec.AlgoName())
	}
	led := &engine.CountingLedger{}
	for r := 0; r < rounds; r++ {
		alg.Step(r, led)
	}
	return alg.Models()[0].FlatParams(nil), led.RoundBytes()
}

// TestBaselinesOverTCP deploys the baselines end to end over real loopback
// TCP — the collective butterfly (PSGD), ring neighborhood gossip (D-PSGD,
// DCD-PSGD), compressed all-gather (TopK, QSGD), and the hub with a real
// parameter-server process (PS-PSGD, and FedAvg/S-FedAvg with the
// fraction-sampled participation set riding in RoundMsg.Active) — and checks
// the collected global model is bit-identical to the in-process run of the
// same recipe, with identical per-round measured traffic. This is the
// acceptance contract: the TCP backend is not a SAPS special case.
func TestBaselinesOverTCP(t *testing.T) {
	const n, rounds = 4, 5
	for _, algo := range []string{"psgd", "d-psgd", "topk-psgd", "qsgd-psgd", "dcd-psgd", "ps-psgd", "fedavg", "s-fedavg"} {
		algo := algo
		t.Run(algo, func(t *testing.T) {
			t.Parallel()
			spec := algoSpec(algo, rounds)
			wantParams, wantBytes := inProcReference(t, spec, n, rounds)

			led := &engine.CountingLedger{}
			srv := &CoordinatorServer{
				N: n, Task: spec,
				BW:     netsim.RandomUniform(n, 1, 5, rng.New(2)),
				Ledger: led,
			}
			addr, err := srv.Listen("127.0.0.1:0")
			if err != nil {
				t.Fatal(err)
			}
			procs := spec.Recipe(n).Nodes()
			var wg sync.WaitGroup
			errs := make([]error, procs)
			for i := 0; i < procs; i++ {
				wg.Add(1)
				go func(i int) {
					defer wg.Done()
					wc := &WorkerClient{}
					_, errs[i] = wc.Run(addr, "127.0.0.1:0")
				}(i)
			}
			final, err := srv.Run()
			wg.Wait()
			if err != nil {
				t.Fatalf("coordinator: %v", err)
			}
			for i, e := range errs {
				if e != nil {
					t.Fatalf("worker %d: %v", i, e)
				}
			}

			if len(final) != len(wantParams) {
				t.Fatalf("collected %d params, want %d", len(final), len(wantParams))
			}
			for j := range final {
				if final[j] != wantParams[j] {
					t.Fatalf("param %d: tcp %v != in-proc %v", j, final[j], wantParams[j])
				}
			}
			got := led.RoundBytes()
			if len(got) != len(wantBytes) {
				t.Fatalf("%d rounds accounted, want %d", len(got), len(wantBytes))
			}
			for r := range got {
				if got[r] != wantBytes[r] {
					t.Fatalf("round %d: tcp %d bytes != in-proc %d", r, got[r], wantBytes[r])
				}
			}
		})
	}
}
