// TCP cluster: the deployable system end to end in one process — a real
// coordinator server and four real worker clients talking gob over loopback
// TCP, training the synthetic task with sparsified peer exchanges.
//
//	go run ./examples/tcpcluster
package main

import (
	"fmt"
	"log"
	"sync"

	saps "sapspsgd"
	"sapspsgd/internal/gossip"
	"sapspsgd/internal/netsim"
	"sapspsgd/internal/nn"
	"sapspsgd/internal/rng"
)

func main() {
	const n = 4
	spec := saps.TaskSpec{
		Arch: "mnist-cnn", C: 1, H: 16, W: 16, Classes: 10, Width: 0.25,
		Samples: 1024, DataSeed: 5,
		LR: 0.05, Batch: 16, Compression: 50, LocalSteps: 1,
		Rounds: 60, Seed: 3,
	}
	srv := &saps.CoordinatorServer{
		N:      n,
		Task:   spec,
		BW:     netsim.RandomUniform(n, 1, 5, rng.New(2)),
		Gossip: gossip.Config{BThres: 2, TThres: 5},
		Logf:   log.Printf,
	}
	addr, err := srv.Listen("127.0.0.1:0")
	if err != nil {
		log.Fatal(err)
	}
	log.Printf("coordinator on %s", addr)

	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			wc := &saps.WorkerClient{}
			if _, err := wc.Run(addr, "127.0.0.1:0"); err != nil {
				log.Printf("worker error: %v", err)
			}
		}()
	}
	params, err := srv.Run()
	wg.Wait()
	if err != nil {
		log.Fatal(err)
	}

	// Evaluate the collected model on the validation split every worker can
	// regenerate locally.
	model, err := spec.BuildModel()
	if err != nil {
		log.Fatal(err)
	}
	model.SetFlatParams(params)
	_, valid := spec.BuildShards(n)
	loss, acc := nn.EvaluateDataset(model, valid, 128)
	fmt.Printf("\ncollected model: %d params, validation loss %.4f, accuracy %.2f%%\n",
		model.ParamCount(), loss, 100*acc)
}
