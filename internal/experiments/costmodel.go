package experiments

import (
	"fmt"

	"sapspsgd/internal/metrics"
)

// CostRow is one row of Table I: the symbolic per-algorithm communication
// cost together with the feature flags the paper lists (sparsification
// support, client-bandwidth awareness, robustness to network dynamics).
type CostRow struct {
	Algorithm      string
	ServerCost     string
	WorkerCost     string
	Sparsification bool
	ConsidersBW    bool
	Robust         bool
	// serverFn/workerFn evaluate the symbolic cost in transmitted values
	// for concrete (n, N, c, T, np).
	serverFn func(p CostParams) float64
	workerFn func(p CostParams) float64
}

// CostParams instantiates the symbolic costs.
type CostParams struct {
	N  int     // model size (parameters)
	n  int     // workers
	C  float64 // compression ratio
	T  int     // rounds
	Np int     // max neighbors (decentralized)
}

// NewCostParams builds cost parameters.
func NewCostParams(workers, modelSize int, c float64, rounds, np int) CostParams {
	return CostParams{N: modelSize, n: workers, C: c, T: rounds, Np: np}
}

// CostModel returns Table I exactly as the paper states it.
func CostModel() []CostRow {
	return []CostRow{
		{
			Algorithm: "PS-PSGD", ServerCost: "2NnT", WorkerCost: "2NT",
			serverFn: func(p CostParams) float64 { return 2 * float64(p.N) * float64(p.n) * float64(p.T) },
			workerFn: func(p CostParams) float64 { return 2 * float64(p.N) * float64(p.T) },
		},
		{
			Algorithm: "PSGD (all-reduce)", ServerCost: "-", WorkerCost: "2NT",
			workerFn: func(p CostParams) float64 { return 2 * float64(p.N) * float64(p.T) },
		},
		{
			Algorithm: "TopK-PSGD", ServerCost: "-", WorkerCost: "2n(N/c)T", Sparsification: true,
			workerFn: func(p CostParams) float64 {
				return 2 * float64(p.n) * float64(p.N) / p.C * float64(p.T)
			},
		},
		{
			Algorithm: "FedAvg", ServerCost: "2NnT", WorkerCost: "2NT",
			serverFn: func(p CostParams) float64 { return 2 * float64(p.N) * float64(p.n) * float64(p.T) },
			workerFn: func(p CostParams) float64 { return 2 * float64(p.N) * float64(p.T) },
		},
		{
			Algorithm: "S-FedAvg", ServerCost: "(N+2N/c)nT", WorkerCost: "(N+2N/c)T", Sparsification: true,
			serverFn: func(p CostParams) float64 {
				return (float64(p.N) + 2*float64(p.N)/p.C) * float64(p.n) * float64(p.T)
			},
			workerFn: func(p CostParams) float64 {
				return (float64(p.N) + 2*float64(p.N)/p.C) * float64(p.T)
			},
		},
		{
			Algorithm: "D-PSGD", ServerCost: "N", WorkerCost: "4·np·NT",
			serverFn: func(p CostParams) float64 { return float64(p.N) },
			workerFn: func(p CostParams) float64 {
				return 4 * float64(p.Np) * float64(p.N) * float64(p.T)
			},
		},
		{
			Algorithm: "DCD-PSGD", ServerCost: "N", WorkerCost: "4·np·(N/c)T", Sparsification: true,
			serverFn: func(p CostParams) float64 { return float64(p.N) },
			workerFn: func(p CostParams) float64 {
				return 4 * float64(p.Np) * float64(p.N) / p.C * float64(p.T)
			},
		},
		{
			Algorithm: "SAPS-PSGD", ServerCost: "N", WorkerCost: "2(N/c)T",
			Sparsification: true, ConsidersBW: true, Robust: true,
			serverFn: func(p CostParams) float64 { return float64(p.N) },
			workerFn: func(p CostParams) float64 { return 2 * float64(p.N) / p.C * float64(p.T) },
		},
	}
}

// WorkerCostValues evaluates every algorithm's symbolic worker cost (in
// transmitted values) for the given parameters — used by the tests that tie
// the measured ledgers back to Table I.
func WorkerCostValues(p CostParams) map[string]float64 {
	out := map[string]float64{}
	for _, r := range CostModel() {
		if r.workerFn != nil {
			out[r.Algorithm] = r.workerFn(p)
		}
	}
	return out
}

// Table1 renders Table I with both the symbolic costs and a concrete
// instantiation.
func Table1(p CostParams) *metrics.Table {
	yn := func(b bool) string {
		if b {
			return "yes"
		}
		return "no"
	}
	t := metrics.NewTable(
		fmt.Sprintf("Table I: communication cost (n=%d, N=%d, c=%.0f, T=%d, np=%d)", p.n, p.N, p.C, p.T, p.Np),
		"Algorithm", "Server cost", "Worker cost", "Worker cost (MB)", "SP.", "C.B.", "R.")
	for _, r := range CostModel() {
		mb := "-"
		if r.workerFn != nil {
			mb = metrics.F(r.workerFn(p) * 4 / 1e6) // 4 bytes per value
		}
		t.Add(r.Algorithm, r.ServerCost, r.WorkerCost, mb, yn(r.Sparsification), yn(r.ConsidersBW), yn(r.Robust))
	}
	return t
}
