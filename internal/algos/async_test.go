package algos

import (
	"bytes"
	"math"
	"testing"

	"sapspsgd/internal/dataset"
	"sapspsgd/internal/engine"
	"sapspsgd/internal/netsim"
	"sapspsgd/internal/nn"
	"sapspsgd/internal/rng"
)

// asyncFixture builds a small async fleet plus its engine options.
func asyncFixture(t *testing.T, algo string, n, steps int, bw *netsim.Bandwidth, slowRanks []int, slowFactor float64) (*AsyncFleet, engine.AsyncOptions) {
	t.Helper()
	tr, _ := dataset.TinyTask(32*n, 3, 11)
	rec := Recipe{Algo: algo, Workers: n, LR: 0.05, Batch: 8, Seed: 11}
	fc := FleetConfig{
		N:       n,
		Factory: func() *nn.Model { return nn.NewMLP(tr.Dim(), []int{8}, 3, 11) },
		Shards:  dataset.PartitionIID(tr, n, 11),
		LR:      rec.LR,
		Batch:   rec.Batch,
		Seed:    rec.Seed,
	}
	af := NewAsyncFleet(fc, rec)
	opts := engine.AsyncOptions{
		Nodes:     af.Nodes,
		Codecs:    af.Codecs,
		Bandwidth: bw,
		Seed:      rec.Seed,
		Steps:     steps,
		OneWay:    rec.OneWay(),
		Compute: engine.AsyncComputeModel{
			MeanSeconds: 0.01, Jitter: 0.3, SlowFactor: slowFactor, SlowRanks: slowRanks,
		},
	}
	return af, opts
}

// runAsync builds and runs one async engine.
func runAsync(t *testing.T, opts engine.AsyncOptions) *engine.AsyncResult {
	t.Helper()
	eng, err := engine.NewAsync(opts)
	if err != nil {
		t.Fatal(err)
	}
	res, err := eng.Run()
	if err != nil {
		t.Fatal(err)
	}
	return res
}

// TestADPSGDConverges: the rendezvous-averaging run trains — the loss series
// falls substantially, every sample is finite, and the byte totals balance.
func TestADPSGDConverges(t *testing.T) {
	const n, steps = 8, 30
	bw := netsim.RandomUniform(n, 5, 50, rng.New(3))
	_, opts := asyncFixture(t, "adpsgd", n, steps, bw, nil, 0)
	res := runAsync(t, opts)
	if res.Steps != n*steps {
		t.Fatalf("completed %d gossips, want %d", res.Steps, n*steps)
	}
	if len(res.Samples) == 0 {
		t.Fatal("no samples")
	}
	first, last := res.Samples[0].MeanLoss, res.FinalLoss
	if !(last < 0.7*first) {
		t.Fatalf("loss did not fall: first sample %v, final %v", first, last)
	}
	for _, s := range res.Samples {
		if math.IsNaN(s.MeanLoss) || math.IsInf(s.MeanLoss, 0) {
			t.Fatalf("non-finite sample loss %v", s.MeanLoss)
		}
		if s.Time < 0 || s.Time > res.FinalTime {
			t.Fatalf("sample time %v outside [0, %v]", s.Time, res.FinalTime)
		}
	}
	var sent, recv int64
	for r := 0; r < n; r++ {
		sent += res.SentBytes[r]
		recv += res.RecvBytes[r]
	}
	if sent != recv {
		t.Fatalf("byte conservation: sent %d, received %d", sent, recv)
	}
	if sent+recv != res.TotalBytes {
		t.Fatalf("TotalBytes %d, endpoint sum %d", res.TotalBytes, sent+recv)
	}
}

// TestGradPushMassConservation: push-sum's invariant — with no transfer in
// flight, the rank weights sum to n and the de-biased models stay finite.
// Also a convergence smoke: gradient push trains.
func TestGradPushMassConservation(t *testing.T) {
	const n, steps = 8, 30
	bw := netsim.RandomUniform(n, 5, 50, rng.New(3))
	af, opts := asyncFixture(t, "gradpush", n, steps, bw, nil, 0)
	res := runAsync(t, opts)
	var wSum float64
	for _, node := range af.Nodes {
		snap := node.Snapshot()
		wSum += snap[len(snap)-1]
	}
	if math.Abs(wSum-float64(n)) > 1e-9 {
		t.Fatalf("push-sum weights sum to %v, want %d", wSum, n)
	}
	for i, m := range af.Models {
		for _, v := range m.FlatParams(nil) {
			if math.IsNaN(v) || math.IsInf(v, 0) {
				t.Fatalf("rank %d has non-finite parameter", i)
			}
		}
	}
	if !(res.FinalLoss < 0.8*res.Samples[0].MeanLoss) {
		t.Fatalf("gradpush loss did not fall: first %v, final %v", res.Samples[0].MeanLoss, res.FinalLoss)
	}
}

// TestAsyncDeterministic: two runs of the identical configuration produce
// byte-identical event logs, per-rank ledgers, and final model parameters.
// This is the in-process half of the CI determinism gate (which adds
// GOMAXPROCS variation on top).
func TestAsyncDeterministic(t *testing.T) {
	for _, algo := range AsyncAlgoNames {
		t.Run(algo, func(t *testing.T) {
			type capture struct {
				log    []byte
				params [][]float64
				sent   []int64
			}
			var runs [2]capture
			for rep := 0; rep < 2; rep++ {
				bw := netsim.RandomUniform(6, 5, 50, rng.New(3))
				af, opts := asyncFixture(t, algo, 6, 10, bw, nil, 0)
				var log netsim.EventLog
				opts.Sink = &log
				res := runAsync(t, opts)
				c := capture{log: log.Bytes(), sent: res.SentBytes}
				for _, m := range af.Models {
					c.params = append(c.params, m.FlatParams(nil))
				}
				runs[rep] = c
			}
			if !bytes.Equal(runs[0].log, runs[1].log) {
				t.Fatal("event logs differ between identical runs")
			}
			for r := range runs[0].sent {
				if runs[0].sent[r] != runs[1].sent[r] {
					t.Fatalf("rank %d sent %d vs %d bytes", r, runs[0].sent[r], runs[1].sent[r])
				}
			}
			for i := range runs[0].params {
				for j := range runs[0].params[i] {
					if runs[0].params[i][j] != runs[1].params[i][j] {
						t.Fatalf("rank %d param %d differs bitwise", i, j)
					}
				}
			}
		})
	}
}

// TestAsyncStragglerLocality is the honest-straggler claim: with two
// disjoint gossip pairs (0–1 and 2–3) and rank 0 slowed 50×, the 2–3 pair
// finishes its steps at fast-pair speed while rank 1 is dragged out by its
// slow partner — a slow rank delays only its rendezvous partners, never the
// fleet.
func TestAsyncStragglerLocality(t *testing.T) {
	const mb = 20.0
	matrix := [][]float64{
		{0, mb, 0, 0},
		{mb, 0, 0, 0},
		{0, 0, 0, mb},
		{0, 0, mb, 0},
	}
	bw := netsim.NewBandwidth(matrix)
	_, opts := asyncFixture(t, "adpsgd", 4, 6, bw, []int{0}, 50)
	var log netsim.EventLog
	opts.Sink = &log
	runAsync(t, opts)
	// A rank's finish time is its last transfer-complete involvement.
	finish := make([]float64, 4)
	for _, e := range log.Events {
		if e.Kind != netsim.EventTransferComplete {
			continue
		}
		finish[e.Rank] = e.Time
		finish[e.Peer] = e.Time
	}
	fast := math.Max(finish[2], finish[3])
	slow := math.Max(finish[0], finish[1])
	if !(fast*5 < slow) {
		t.Fatalf("fast pair finished at %v, slow pair at %v: straggler is not localized", fast, slow)
	}
}
