package campaign

import (
	"bufio"
	"encoding/json"
	"errors"
	"fmt"
	"io/fs"
	"os"
	"sync"
)

// ManifestName is the journal file a campaign keeps in its output
// directory.
const ManifestName = "manifest.jsonl"

// ManifestEntry is one completed cell's journal line. Wall seconds are
// machine-dependent and live only here — the per-cell result files and the
// aggregates carry exclusively deterministic fields.
type ManifestEntry struct {
	// Cell is the cell ID the line records.
	Cell string `json:"cell"`
	// SpecSHA is the cell spec's content hash at execution time; resume
	// re-runs the cell when the current expansion disagrees.
	SpecSHA string `json:"spec_sha"`
	// TotalBytes, FinalLoss and SimSeconds mirror the cell result file.
	TotalBytes int64   `json:"total_bytes"`
	FinalLoss  float64 `json:"final_loss"`
	SimSeconds float64 `json:"sim_seconds"`
	// WallSeconds is the cell's measured execution time.
	WallSeconds float64 `json:"wall_seconds"`
}

// ReadManifest loads the journal, returning the latest entry per cell ID.
// A missing file is an empty manifest. Unparseable lines — e.g. the torn
// tail write of a killed campaign — are skipped, not fatal: the affected
// cell simply re-runs.
func ReadManifest(path string) (map[string]ManifestEntry, error) {
	f, err := os.Open(path)
	if errors.Is(err, fs.ErrNotExist) {
		return map[string]ManifestEntry{}, nil
	}
	if err != nil {
		return nil, err
	}
	defer f.Close()
	entries := map[string]ManifestEntry{}
	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 0, 64*1024), 1<<20)
	for sc.Scan() {
		line := sc.Bytes()
		if len(line) == 0 {
			continue
		}
		var e ManifestEntry
		if err := json.Unmarshal(line, &e); err != nil || e.Cell == "" {
			continue
		}
		entries[e.Cell] = e
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("campaign: reading %s: %w", path, err)
	}
	return entries, nil
}

// manifestWriter appends journal lines durably: each entry is one
// marshal+newline write followed by a sync, so a kill between cells loses
// at most the in-flight line (which ReadManifest tolerates).
type manifestWriter struct {
	mu sync.Mutex
	f  *os.File
}

// openManifest opens (or creates) the journal for appending.
func openManifest(path string) (*manifestWriter, error) {
	f, err := os.OpenFile(path, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return nil, err
	}
	return &manifestWriter{f: f}, nil
}

// Append journals one completed cell.
func (w *manifestWriter) Append(e ManifestEntry) error {
	line, err := json.Marshal(e)
	if err != nil {
		return err
	}
	w.mu.Lock()
	defer w.mu.Unlock()
	if _, err := w.f.Write(append(line, '\n')); err != nil {
		return err
	}
	return w.f.Sync()
}

// Close releases the journal file.
func (w *manifestWriter) Close() error { return w.f.Close() }
