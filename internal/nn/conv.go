package nn

import (
	"fmt"
	"math"

	"sapspsgd/internal/rng"
	"sapspsgd/internal/tensor"
)

// Conv2D is a 2-D convolution over channel-major images, implemented as an
// im2col + matrix-product pair (forward) and its adjoint (backward).
type Conv2D struct {
	In         Shape
	OutC       int
	K, Stride  int
	Pad        int
	OutShape   Shape
	w          *tensor.Matrix // OutC × (InC*K*K)
	b          []float64
	dw         *tensor.Matrix
	db         []float64
	cols       []*tensor.Matrix // cached per-sample im2col matrices
	colScratch *tensor.Matrix   // reused in inference mode
}

// NewConv2D returns a He-initialized convolution layer.
func NewConv2D(in Shape, outC, k, stride, pad int, r *rng.Source) *Conv2D {
	outH := tensor.ConvOutSize(in.H, k, stride, pad)
	outW := tensor.ConvOutSize(in.W, k, stride, pad)
	if outH < 1 || outW < 1 {
		panic(fmt.Sprintf("nn: Conv2D output %dx%d invalid for in=%v k=%d s=%d p=%d", outH, outW, in, k, stride, pad))
	}
	fanIn := in.C * k * k
	c := &Conv2D{
		In:       in,
		OutC:     outC,
		K:        k,
		Stride:   stride,
		Pad:      pad,
		OutShape: Shape{C: outC, H: outH, W: outW},
		w:        tensor.NewMatrix(outC, fanIn),
		b:        make([]float64, outC),
		dw:       tensor.NewMatrix(outC, fanIn),
		db:       make([]float64, outC),
	}
	std := math.Sqrt(2 / float64(fanIn))
	for i := range c.w.Data {
		c.w.Data[i] = std * r.NormFloat64()
	}
	return c
}

// Forward convolves the batch.
func (c *Conv2D) Forward(x *tensor.Matrix, train bool) *tensor.Matrix {
	if x.Cols != c.In.Dim() {
		panic(fmt.Sprintf("nn: Conv2D input %d, want %d (%v)", x.Cols, c.In.Dim(), c.In))
	}
	outHW := c.OutShape.H * c.OutShape.W
	out := tensor.NewMatrix(x.Rows, c.OutShape.Dim())
	if train {
		c.cols = make([]*tensor.Matrix, x.Rows)
	}
	prod := tensor.NewMatrix(c.OutC, outHW)
	for i := 0; i < x.Rows; i++ {
		var col *tensor.Matrix
		if train {
			col = tensor.NewMatrix(c.In.C*c.K*c.K, outHW)
			c.cols[i] = col
		} else {
			if c.colScratch == nil {
				c.colScratch = tensor.NewMatrix(c.In.C*c.K*c.K, outHW)
			}
			col = c.colScratch
		}
		tensor.Im2Col(x.Row(i), c.In.C, c.In.H, c.In.W, c.K, c.K, c.Stride, c.Pad, col)
		tensor.MatMulInto(prod, c.w, col)
		o := out.Row(i)
		copy(o, prod.Data)
		for oc := 0; oc < c.OutC; oc++ {
			bias := c.b[oc]
			seg := o[oc*outHW : (oc+1)*outHW]
			for j := range seg {
				seg[j] += bias
			}
		}
	}
	return out
}

// Backward accumulates dW, db and returns dx via the im2col adjoint.
func (c *Conv2D) Backward(dout *tensor.Matrix) *tensor.Matrix {
	if c.cols == nil {
		panic("nn: Conv2D.Backward before training Forward")
	}
	outHW := c.OutShape.H * c.OutShape.W
	dx := tensor.NewMatrix(len(c.cols), c.In.Dim())
	dcol := tensor.NewMatrix(c.In.C*c.K*c.K, outHW)
	wT := c.w.T()
	for i := 0; i < dout.Rows; i++ {
		g := tensor.MatrixFrom(c.OutC, outHW, dout.Row(i))
		col := c.cols[i]
		// dW += g · colᵀ, expressed as row-row dot products so both operands
		// stream through memory contiguously.
		for oc := 0; oc < c.OutC; oc++ {
			gRow := g.Row(oc)
			c.db[oc] += tensor.Sum(gRow)
			dwRow := c.dw.Row(oc)
			for r := 0; r < col.Rows; r++ {
				dwRow[r] += tensor.Dot(gRow, col.Row(r))
			}
		}
		// dcol = Wᵀ · g ; dx = col2im(dcol).
		tensor.MatMulInto(dcol, wT, g)
		tensor.Col2Im(dcol, c.In.C, c.In.H, c.In.W, c.K, c.K, c.Stride, c.Pad, dx.Row(i))
	}
	c.cols = nil
	return dx
}

// Params returns the kernel and bias tensors.
func (c *Conv2D) Params() []Param {
	return []Param{
		{Name: "conv.w", Data: c.w.Data, Grad: c.dw.Data},
		{Name: "conv.b", Data: c.b, Grad: c.db},
	}
}

var _ Layer = (*Conv2D)(nil)
