package compress

import (
	"sync"
	"testing"
)

// TestMaskCacheMatchesMaskInto pins the sharing contract: the cached mask is
// bit-identical to a direct MaskInto evaluation for every key, including
// after key changes.
func TestMaskCacheMatchesMaskInto(t *testing.T) {
	mc := &MaskCache{}
	keys := []struct {
		seed  uint64
		round int
		n     int
		c     float64
	}{
		{1, 0, 128, 4},
		{1, 1, 128, 4},
		{1, 1, 128, 4}, // repeat: must hit the cache
		{9, 1, 64, 2},
		{1, 1, 128, 4}, // back to an evicted key: must recompute correctly
	}
	for _, k := range keys {
		got := mc.Get(k.seed, k.round, k.n, k.c)
		want := Mask(k.seed, k.round, k.n, k.c)
		if len(got) != len(want) {
			t.Fatalf("key %+v: len %d, want %d", k, len(got), len(want))
		}
		for i := range got {
			if got[i] != want[i] {
				t.Fatalf("key %+v: bit %d differs", k, i)
			}
		}
	}
}

// TestMaskCacheHitReturnsSameSlice pins the memory contract: repeated hits
// return the same backing slice (no per-rank copies), and the previous
// generation's slice survives one key change (double buffering), so a
// barrier-lagged holder never observes a torn mask.
func TestMaskCacheHitReturnsSameSlice(t *testing.T) {
	mc := &MaskCache{}
	a := mc.Get(7, 0, 256, 4)
	b := mc.Get(7, 0, 256, 4)
	if &a[0] != &b[0] {
		t.Fatal("cache hit returned a different slice")
	}
	snapshot := append([]bool(nil), a...)
	mc.Get(7, 1, 256, 4) // advance one generation
	for i := range a {
		if a[i] != snapshot[i] {
			t.Fatal("previous generation was overwritten after one key change")
		}
	}
}

// TestMaskCacheConcurrent exercises the fleet access pattern: many rank
// goroutines asking for the same key at once, all receiving the identical
// correct mask (run with -race to check the locking).
func TestMaskCacheConcurrent(t *testing.T) {
	mc := &MaskCache{}
	want := Mask(42, 3, 512, 8)
	var wg sync.WaitGroup
	for g := 0; g < 16; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			got := mc.Get(42, 3, 512, 8)
			for i := range got {
				if got[i] != want[i] {
					t.Errorf("bit %d differs", i)
					return
				}
			}
		}()
	}
	wg.Wait()
}
